//! The segmented index lifecycle: [`IndexWriter`] → [`IndexReader`] →
//! [`Compactor`].
//!
//! The monolithic `SketchIndex::build` assumes a static corpus; a served
//! system ingests new genome samples continuously. This module turns the
//! sketch index into a long-lived, mutable *service* built from
//! immutable parts, the LSM shape of production similarity-serving
//! systems:
//!
//! * an [`IndexWriter`] **stages** samples and deletes; `commit()` signs
//!   the staged batch under the index's one fixed
//!   [`SignatureScheme`](gas_core::minhash::SignatureScheme) (cost
//!   proportional to the *delta*, not the corpus), seals it into an
//!   immutable checksummed [`Segment`], records deletes as tombstones,
//!   and bumps the manifest generation;
//! * an [`IndexReader`] is an **atomic snapshot** over a set of sealed
//!   segments plus a tombstone set — cheap to clone (shared `Arc`s),
//!   never sees half a commit, and serves queries through
//!   [`QueryEngine`](crate::query::QueryEngine) with answers
//!   bit-identical to a fresh monolithic build over the same live
//!   corpus;
//! * a [`Compactor`] **merges** small segments into one under a
//!   size-tiered policy, rewriting bucket tables over the merged local
//!   numbering and physically dropping tombstoned rows (whose ids then
//!   leave the tombstone set — ids are never reused, so a dropped row
//!   can never resurface).
//!
//! Persistence is the container's version-3 multi-segment file
//! (`crate::container`): append-only segment and manifest blocks, every
//! block checksummed, the manifest written *last* so a crash mid-commit
//! truncates to a torn tail and the file falls back to the previous
//! manifest generation. v1/v2 files open as a single-segment index and
//! are rewritten as v3 on their first commit.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gas_chaos::{RealFs, Storage};
use gas_core::indicator::SampleCollection;
use gas_core::minhash::{MinHashSignature, SignatureScheme};

use crate::build::IndexConfig;
use crate::container::{
    self, container_version, fnv1a64, ManifestRecord, ManifestSegmentRef, VERSION_SEGMENTED,
};
use crate::error::{IndexError, IndexResult};
use crate::params::LshParams;
use crate::segment::{Segment, SegmentRow, SegmentStats, SharedSegment};

/// What one `commit()` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitSummary {
    /// The manifest generation after the commit.
    pub generation: u64,
    /// Id of the segment this commit sealed (`None` for a deletes-only
    /// or empty commit).
    pub sealed_segment: Option<u64>,
    /// Rows sealed into the new segment.
    pub rows_added: usize,
    /// Staged deletes turned into tombstones.
    pub deletes_applied: usize,
}

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionSummary {
    /// The manifest generation after the pass (unchanged for a no-op).
    pub generation: u64,
    /// Segment groups merged.
    pub groups_merged: usize,
    /// Live segments before the pass.
    pub segments_before: usize,
    /// Live segments after the pass.
    pub segments_after: usize,
    /// Tombstoned rows physically dropped (their ids leave the
    /// tombstone set).
    pub tombstones_purged: usize,
    /// Rows written into merged segments.
    pub rows_written: usize,
}

/// What one `vacuum()` did. Vacuum reclaims the space of dead blocks
/// (compacted-away segments, superseded manifests) by rewriting the
/// backing file; when the file is already a minimal image of the live
/// state — or there is no file — vacuum is a true no-op: no rewrite, no
/// mtime churn, no generation bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VacuumReport {
    /// Bytes the rewrite reclaimed (0 for a no-op).
    pub bytes_reclaimed: u64,
    /// Whether the backing file was actually rewritten.
    pub rewritten: bool,
}

/// How an on-disk index was recovered by `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The manifest generation the file opened at.
    pub generation: u64,
    /// Bytes after the last valid manifest (a torn commit tail); they
    /// are discarded by the next commit.
    pub torn_bytes: usize,
    /// The file was a v1/v2 single-index container, opened as one
    /// segment (rewritten as v3 on the next commit).
    pub upgraded_legacy: bool,
}

/// Committed lifecycle state shared by writer and reader loading paths.
struct LifecycleState {
    scheme: SignatureScheme,
    params: LshParams,
    segments: Vec<SharedSegment>,
    segment_crcs: Vec<(u64, u64)>,
    tombstones: Vec<u32>,
    next_id: u32,
    next_segment_id: u64,
    generation: u64,
    valid_len: u64,
    needs_rewrite: bool,
    /// A checksum-valid block of an unknown kind follows the opened
    /// generation — written by a newer build. Readers may proceed;
    /// writers must refuse (their truncate-then-append would destroy
    /// it).
    foreign_kind: Option<[u8; 4]>,
}

fn load_state(bytes: Vec<u8>) -> IndexResult<(LifecycleState, RecoveryReport)> {
    let version = container_version(&bytes)?;
    match version {
        1 | 2 => {
            // A legacy single-index container: open it as one sealed
            // segment with dense global ids, generation 1, no tombstones.
            let index = crate::build::SketchIndex::from_container_bytes(bytes)?;
            let segment = index.segment().clone();
            let state = LifecycleState {
                scheme: *segment.scheme(),
                params: *segment.params(),
                next_id: segment.n_rows() as u32,
                next_segment_id: segment.id() + 1,
                // No v3 blocks exist yet; the upgrade rewrite computes
                // checksums when it serializes, so none are needed here.
                segment_crcs: Vec::new(),
                segments: vec![segment],
                tombstones: Vec::new(),
                generation: 1,
                valid_len: 0,
                needs_rewrite: true,
                foreign_kind: None,
            };
            let report = RecoveryReport {
                generation: state.generation,
                torn_bytes: 0,
                upgraded_legacy: true,
            };
            Ok((state, report))
        }
        VERSION_SEGMENTED => {
            let scan = container::scan_v3(&bytes)?;
            let manifest = scan.manifest.ok_or_else(|| {
                IndexError::NoLiveGeneration("no valid manifest block survives in the file".into())
            })?;
            let mut segments = Vec::with_capacity(manifest.segments.len());
            let mut segment_crcs = Vec::with_capacity(manifest.segments.len());
            for sref in &manifest.segments {
                let (segment, crc) =
                    scan.segments.get(&sref.id).ok_or_else(|| IndexError::Corrupt {
                        context: format!(
                            "manifest generation {} references missing segment {}",
                            manifest.generation, sref.id
                        ),
                    })?;
                if *crc != sref.crc || segment.n_rows() != sref.rows as usize {
                    return Err(IndexError::Corrupt {
                        context: format!(
                            "manifest generation {} disagrees with segment {} on disk",
                            manifest.generation, sref.id
                        ),
                    });
                }
                if segment.scheme() != &manifest.scheme || segment.params() != &manifest.params {
                    return Err(IndexError::Corrupt {
                        context: format!(
                            "segment {} was sealed under a different scheme than the manifest",
                            sref.id
                        ),
                    });
                }
                segment_crcs.push((sref.id, *crc));
                segments.push(segment.clone());
            }
            // Cross-invariants a checksum-valid but buggy/forged manifest
            // could still violate: global ids must be disjoint across
            // segments and below the id high-water mark (or `add` would
            // silently reuse a live id), and every tombstone must point
            // at a stored row (or live-row accounting would underflow).
            let mut all_ids: Vec<u32> =
                segments.iter().flat_map(|s| s.global_ids().iter().copied()).collect();
            all_ids.sort_unstable();
            if all_ids.windows(2).any(|w| w[0] == w[1]) {
                return Err(IndexError::Corrupt {
                    context: "a global id is stored by two segments".into(),
                });
            }
            if all_ids.last().is_some_and(|&max| max >= manifest.next_id) {
                return Err(IndexError::Corrupt {
                    context: format!(
                        "manifest id high-water mark {} does not cover stored ids",
                        manifest.next_id
                    ),
                });
            }
            if let Some(&orphan) =
                manifest.tombstones.iter().find(|&&t| all_ids.binary_search(&t).is_err())
            {
                return Err(IndexError::Corrupt {
                    context: format!("tombstone {orphan} points at no stored row"),
                });
            }
            let state = LifecycleState {
                scheme: manifest.scheme,
                params: manifest.params,
                segments,
                segment_crcs,
                tombstones: manifest.tombstones,
                next_id: manifest.next_id,
                next_segment_id: scan.max_segment_id + 1,
                generation: manifest.generation,
                valid_len: scan.valid_len as u64,
                needs_rewrite: false,
                foreign_kind: scan.foreign_kind,
            };
            let report = RecoveryReport {
                generation: state.generation,
                torn_bytes: scan.torn_bytes,
                upgraded_legacy: false,
            };
            Ok((state, report))
        }
        other => Err(IndexError::UnsupportedVersion(other)),
    }
}

/// One staged (not yet committed) sample. `pub(crate)` so the commit
/// pipeline can carry a taken batch to a signer thread.
#[derive(Debug, Clone)]
pub(crate) struct StagedSample {
    pub(crate) name: String,
    pub(crate) values: Vec<u64>,
}

/// A staged batch handed off to the commit pipeline by
/// [`IndexWriter::take_staged`]: the samples keep the global ids they
/// were assigned at `add` time (`base..base + samples.len()`), and the
/// staged deletes ride along to be applied by the same commit.
#[derive(Debug)]
pub(crate) struct StagedBatch {
    /// Global id of the first staged sample.
    pub(crate) base: u32,
    pub(crate) samples: Vec<StagedSample>,
    pub(crate) deletes: BTreeSet<u32>,
}

/// The mutable half of the lifecycle: stages samples and deletes,
/// seals immutable segments on `commit()`, and (optionally) keeps a
/// container-v3 file on disk in sync, crash-safely.
#[derive(Debug)]
pub struct IndexWriter {
    scheme: SignatureScheme,
    params: LshParams,
    segments: Vec<SharedSegment>,
    /// Payload checksum per live segment id (what the manifest records;
    /// cached so unchanged segments are not re-encoded every commit).
    segment_crcs: std::collections::BTreeMap<u64, u64>,
    /// Ids of live segments whose `SEG` blocks are known to sit in the
    /// valid on-disk prefix. `persist` appends every live segment *not*
    /// in this set — not just the newest one — so a failed persist (disk
    /// full, transient I/O error) leaves memory ahead of disk but the
    /// next successful persist writes the missing blocks before the
    /// manifest that references them.
    persisted: BTreeSet<u64>,
    tombstones: BTreeSet<u32>,
    staged: Vec<StagedSample>,
    staged_deletes: BTreeSet<u32>,
    /// Rows taken by the commit pipeline ([`Self::take_staged`]) but not
    /// yet sealed by [`Self::commit_signed_rows`]. Like staged rows they
    /// are invisible to readers and excluded from the committed id
    /// high-water mark.
    in_flight: u32,
    /// Next global id to assign (staged samples included).
    next_id: u32,
    next_segment_id: u64,
    generation: u64,
    path: Option<PathBuf>,
    /// Length of the validated v3 prefix on disk; a torn tail beyond it
    /// is truncated before the next append.
    valid_len: u64,
    /// The file on disk is a legacy v1/v2 container; the next commit
    /// rewrites it wholesale as v3.
    needs_rewrite: bool,
    /// Committed state not yet flushed to disk (a previous persist
    /// failed). Any later `commit()` — even an otherwise-empty one —
    /// retries the flush.
    dirty: bool,
    /// The backing file is exactly the minimal image of the live state
    /// (a fresh `rewrite_file` with nothing appended since): vacuum has
    /// nothing to reclaim and must not churn the file.
    clean: bool,
    /// Every byte this writer moves to or from disk goes through here.
    /// [`RealFs`] by default; chaos drills swap in a
    /// [`gas_chaos::ChaosStorage`] to inject short/torn writes,
    /// transient errors and fsync loss at every I/O site.
    storage: Arc<dyn Storage>,
}

impl IndexWriter {
    /// A fresh, empty, in-memory writer (no backing file).
    #[deprecated(since = "0.7.0", note = "construct through `IndexOptions::open_writer` instead")]
    pub fn create(config: &IndexConfig) -> IndexResult<Self> {
        IndexWriter::new_in_memory(config)
    }

    /// A fresh, empty, in-memory writer (no backing file): signature
    /// scheme and banding parameters are fixed here, for the life of the
    /// index — every segment ever sealed must be signed identically or
    /// signatures would not be comparable across segments. The public
    /// entry point is [`crate::service::IndexOptions::open_writer`].
    pub(crate) fn new_in_memory(config: &IndexConfig) -> IndexResult<Self> {
        let params = LshParams::for_threshold(config.signature_len, config.threshold)?;
        let scheme = SignatureScheme::new(config.signature_len)?
            .with_seed(config.seed)
            .with_kind(config.signer);
        Ok(IndexWriter {
            scheme,
            params,
            segments: Vec::new(),
            segment_crcs: Default::default(),
            persisted: BTreeSet::new(),
            tombstones: BTreeSet::new(),
            staged: Vec::new(),
            staged_deletes: BTreeSet::new(),
            in_flight: 0,
            next_id: 0,
            next_segment_id: 1,
            generation: 0,
            path: None,
            valid_len: 0,
            needs_rewrite: false,
            dirty: false,
            clean: false,
            storage: Arc::new(RealFs),
        })
    }

    /// A fresh writer backed by a new container-v3 file at `path`.
    #[deprecated(
        since = "0.7.0",
        note = "construct through `IndexOptions::create_writer_at` instead"
    )]
    pub fn create_at(path: impl AsRef<Path>, config: &IndexConfig) -> IndexResult<Self> {
        IndexWriter::new_at(path, config)
    }

    /// A fresh writer backed by a new container-v3 file at `path`
    /// (created or truncated): the file immediately holds a valid
    /// generation-0 manifest, so it is openable from the first byte
    /// flushed. The public entry point is
    /// [`crate::service::IndexOptions::create_writer_at`].
    pub(crate) fn new_at(path: impl AsRef<Path>, config: &IndexConfig) -> IndexResult<Self> {
        let mut writer = IndexWriter::new_in_memory(config)?;
        writer.path = Some(path.as_ref().to_path_buf());
        writer.rewrite_file()?;
        Ok(writer)
    }

    /// Open an existing index file read-write. v3 files resume at their
    /// newest intact manifest generation (a torn commit tail is
    /// discarded); v1/v2 single-index containers open as one segment and
    /// are rewritten as v3 by the next commit.
    pub fn open(path: impl AsRef<Path>) -> IndexResult<Self> {
        IndexWriter::open_with_report(path).map(|(w, _)| w)
    }

    /// [`Self::open`], also reporting what recovery did.
    pub fn open_with_report(path: impl AsRef<Path>) -> IndexResult<(Self, RecoveryReport)> {
        IndexWriter::open_with_storage(path, Arc::new(RealFs))
    }

    /// [`Self::open_with_report`] through an explicit [`Storage`] —
    /// chaos drills open through a fault-injecting storage so even the
    /// recovery read can fail transiently.
    pub fn open_with_storage(
        path: impl AsRef<Path>,
        storage: Arc<dyn Storage>,
    ) -> IndexResult<(Self, RecoveryReport)> {
        let path = path.as_ref().to_path_buf();
        let (state, report) = load_state(storage.read(&path)?)?;
        if let Some(kind) = state.foreign_kind {
            // A newer build wrote blocks after the generation this build
            // understands. Opening read-write would truncate them on the
            // next commit — silent destruction of someone else's data —
            // so only `IndexReader::open` may proceed.
            return Err(IndexError::ForeignBlocks {
                kind: String::from_utf8_lossy(&kind).trim_end_matches('\0').to_string(),
            });
        }
        let writer = IndexWriter {
            scheme: state.scheme,
            params: state.params,
            // A legacy (needs_rewrite) open has nothing in v3 form on
            // disk yet; a v3 open knows every manifest-referenced
            // segment sits in the valid prefix.
            persisted: if state.needs_rewrite {
                BTreeSet::new()
            } else {
                state.segment_crcs.iter().map(|&(id, _)| id).collect()
            },
            segment_crcs: state.segment_crcs.into_iter().collect(),
            segments: state.segments,
            tombstones: state.tombstones.into_iter().collect(),
            staged: Vec::new(),
            staged_deletes: BTreeSet::new(),
            in_flight: 0,
            next_id: state.next_id,
            next_segment_id: state.next_segment_id,
            generation: state.generation,
            path: Some(path),
            valid_len: state.valid_len,
            needs_rewrite: state.needs_rewrite,
            dirty: false,
            // Conservative: the opened file may or may not carry dead
            // blocks; the first vacuum after an open rewrites once and
            // re-establishes cleanliness.
            clean: false,
            storage,
        };
        Ok((writer, report))
    }

    /// Swap the storage implementation every subsequent I/O goes
    /// through. Chaos drills install a [`gas_chaos::ChaosStorage`] here;
    /// production never calls this and stays on [`RealFs`].
    pub fn set_storage(&mut self, storage: Arc<dyn Storage>) {
        self.storage = storage;
    }

    /// The signature scheme every segment of this index signs under.
    pub fn scheme(&self) -> &SignatureScheme {
        &self.scheme
    }

    /// The banding parameters shared by every segment.
    pub fn params(&self) -> &LshParams {
        &self.params
    }

    /// The committed manifest generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Samples staged but not yet committed.
    pub fn staged_samples(&self) -> usize {
        self.staged.len()
    }

    /// Deletes staged but not yet committed.
    pub fn staged_deletes(&self) -> usize {
        self.staged_deletes.len()
    }

    /// Committed state is ahead of the backing file (a previous persist
    /// failed mid-commit). The next `commit()` — even an otherwise
    /// empty one — retries the flush.
    pub fn needs_persist(&self) -> bool {
        self.dirty
    }

    /// Committed live samples (tombstoned rows excluded).
    pub fn live_samples(&self) -> usize {
        self.segments.iter().map(|s| s.n_rows()).sum::<usize>() - self.tombstones.len()
    }

    /// First global id not yet assigned.
    pub fn id_bound(&self) -> u32 {
        self.next_id
    }

    fn committed_next_id(&self) -> u32 {
        self.next_id - self.staged.len() as u32 - self.in_flight
    }

    /// Stage one sample; returns its global id (assigned now, stable for
    /// life, never reused). `values` is treated as a set — it is sorted
    /// and deduplicated here, exactly as `SampleCollection::from_sets`
    /// would.
    pub fn add(&mut self, name: impl Into<String>, mut values: Vec<u64>) -> IndexResult<u32> {
        if self.next_id == u32::MAX {
            return Err(IndexError::InvalidConfig(
                "the u32 global id space of this index is exhausted".into(),
            ));
        }
        if !values.windows(2).all(|w| w[0] < w[1]) {
            values.sort_unstable();
            values.dedup();
        }
        let id = self.next_id;
        self.next_id += 1;
        self.staged.push(StagedSample { name: name.into(), values });
        Ok(id)
    }

    /// Stage every sample of a collection; returns the assigned global
    /// id range.
    pub fn add_collection(
        &mut self,
        collection: &SampleCollection,
    ) -> IndexResult<std::ops::Range<u32>> {
        let first = self.next_id;
        if ((u32::MAX - first) as usize) < collection.n() {
            return Err(IndexError::InvalidConfig(format!(
                "{} samples exceed the remaining u32 id space",
                collection.n()
            )));
        }
        for i in 0..collection.n() {
            self.add(collection.names()[i].clone(), collection.sample(i).to_vec())?;
        }
        Ok(first..self.next_id)
    }

    /// Stage the delete of a *committed, live* sample. The delete
    /// becomes a tombstone at the next `commit()`; the row is physically
    /// dropped by the next compaction that touches its segment.
    pub fn delete(&mut self, id: u32) -> IndexResult<()> {
        if id >= self.committed_next_id() {
            let context = if id < self.next_id {
                "still staged; commit it before deleting".to_string()
            } else {
                "never assigned".to_string()
            };
            return Err(IndexError::UnknownSample { id, context });
        }
        if self.tombstones.contains(&id) || self.staged_deletes.contains(&id) {
            return Err(IndexError::UnknownSample { id, context: "already deleted".into() });
        }
        if !self.segments.iter().any(|s| s.local_of(id).is_some()) {
            return Err(IndexError::UnknownSample {
                id,
                context: "already deleted and compacted away".into(),
            });
        }
        self.staged_deletes.insert(id);
        Ok(())
    }

    /// Seal the staged samples into a new immutable segment, turn staged
    /// deletes into tombstones, bump the generation, and (when
    /// file-backed) append the segment and the new manifest to the
    /// container — manifest last, so a crash anywhere mid-commit leaves
    /// the previous generation the newest intact one. With nothing
    /// staged this is a no-op.
    pub fn commit(&mut self) -> IndexResult<CommitSummary> {
        if self.staged.is_empty() && self.staged_deletes.is_empty() {
            if self.dirty {
                // A previous persist failed mid-commit: memory is ahead
                // of disk. Retry the flush so an "empty" commit can heal
                // the divergence once the I/O problem clears.
                self.persist()?;
            }
            return Ok(CommitSummary {
                generation: self.generation,
                sealed_segment: None,
                rows_added: 0,
                deletes_applied: 0,
            });
        }
        let mut sealed = None;
        let mut rows_added = 0usize;
        if !self.staged.is_empty() {
            let base = self.committed_next_id();
            let staged = std::mem::take(&mut self.staged);
            let global_ids: Vec<u32> = (base..self.next_id).collect();
            let names: Vec<String> = staged.iter().map(|s| s.name.clone()).collect();
            let sets: Vec<&[u64]> = staged.iter().map(|s| s.values.as_slice()).collect();
            let segment = Segment::sign_and_build(
                self.next_segment_id,
                self.scheme,
                self.params,
                global_ids,
                names,
                &sets,
            )?;
            self.next_segment_id += 1;
            sealed = Some(segment.id());
            rows_added = segment.n_rows();
            self.segments.push(SharedSegment::new(segment));
        }
        let deletes = std::mem::take(&mut self.staged_deletes);
        self.finish_commit(sealed, rows_added, deletes)
    }

    /// Hand the staged samples and deletes to the commit pipeline: the
    /// batch keeps its already-assigned global ids, is signed off-thread,
    /// and returns through [`Self::commit_signed_rows`]. Until then the
    /// rows are `in_flight`: invisible to readers, excluded from the
    /// committed id high-water mark.
    pub(crate) fn take_staged(&mut self) -> StagedBatch {
        let samples = std::mem::take(&mut self.staged);
        let deletes = std::mem::take(&mut self.staged_deletes);
        let base = self.next_id - samples.len() as u32;
        self.in_flight += samples.len() as u32;
        StagedBatch { base, samples, deletes }
    }

    /// Seal an already-signed batch (the commit pipeline's landing path):
    /// `rows` must carry the contiguous global ids a matching
    /// [`Self::take_staged`] reserved, in order. Applies `deletes` as
    /// tombstones, bumps the generation and flushes — exactly what
    /// `commit()` would have done for the same batch, minus the signing
    /// (already performed off-thread).
    pub(crate) fn commit_signed_rows(
        &mut self,
        rows: Vec<SegmentRow>,
        deletes: BTreeSet<u32>,
    ) -> IndexResult<CommitSummary> {
        if rows.is_empty() && deletes.is_empty() {
            if self.dirty {
                self.persist()?;
            }
            return Ok(CommitSummary {
                generation: self.generation,
                sealed_segment: None,
                rows_added: 0,
                deletes_applied: 0,
            });
        }
        let mut sealed = None;
        let mut rows_added = 0usize;
        if !rows.is_empty() {
            self.in_flight -= rows.len() as u32;
            let segment = Segment::from_rows(self.next_segment_id, self.scheme, self.params, rows)?;
            self.next_segment_id += 1;
            sealed = Some(segment.id());
            rows_added = segment.n_rows();
            self.segments.push(SharedSegment::new(segment));
        }
        self.finish_commit(sealed, rows_added, deletes)
    }

    /// Give up on an in-flight batch (its commit was shed by admission
    /// control): the reserved global ids leak permanently — ids are
    /// never reused, so a gap is indistinguishable from a
    /// deleted-and-compacted row — and the rows never become visible.
    pub(crate) fn abandon_in_flight(&mut self, rows: usize) {
        debug_assert!(self.in_flight >= rows as u32);
        self.in_flight -= (rows as u32).min(self.in_flight);
    }

    /// Seal every sample of `collection` as one segment in a single
    /// step — the monolithic-build fast path: signatures are computed
    /// straight off the collection's sample slices, with no staged
    /// copies of the value sets. Semantically identical to
    /// [`Self::add_collection`] followed by [`Self::commit`] (staged
    /// deletes, if any, are applied alongside, exactly as `commit`
    /// would). Errors if samples are currently staged, so interleaved
    /// id assignment stays unambiguous.
    pub fn commit_collection(
        &mut self,
        collection: &SampleCollection,
    ) -> IndexResult<CommitSummary> {
        if !self.staged.is_empty() {
            return Err(IndexError::InvalidConfig(
                "commit staged samples before a whole-collection commit".into(),
            ));
        }
        if ((u32::MAX - self.next_id) as usize) < collection.n() {
            return Err(IndexError::InvalidConfig(format!(
                "{} samples exceed the remaining u32 id space",
                collection.n()
            )));
        }
        let base = self.next_id;
        let signatures = self.scheme.sign_collection(collection);
        let rows: Vec<SegmentRow> = signatures
            .into_iter()
            .enumerate()
            .map(|(i, signature)| SegmentRow {
                global_id: base + i as u32,
                signature,
                set_size: collection.sample(i).len() as u64,
                name: collection.names()[i].clone(),
            })
            .collect();
        let segment = Segment::from_rows(self.next_segment_id, self.scheme, self.params, rows)?;
        self.next_segment_id += 1;
        self.next_id += collection.n() as u32;
        let sealed = Some(segment.id());
        let rows_added = segment.n_rows();
        self.segments.push(SharedSegment::new(segment));
        let deletes = std::mem::take(&mut self.staged_deletes);
        self.finish_commit(sealed, rows_added, deletes)
    }

    /// The shared tail of every commit shape: apply this commit's
    /// deletes, bump the generation, flush. Deletes are passed in (not
    /// read from `staged_deletes`) so a pipelined commit only applies
    /// the deletes that were staged when its batch was taken — deletes
    /// staged later belong to a later commit.
    fn finish_commit(
        &mut self,
        sealed: Option<u64>,
        rows_added: usize,
        mut deletes: BTreeSet<u32>,
    ) -> IndexResult<CommitSummary> {
        let deletes_applied = deletes.len();
        self.tombstones.append(&mut deletes);
        self.generation += 1;
        self.dirty = true;
        self.persist()?;
        Ok(CommitSummary {
            generation: self.generation,
            sealed_segment: sealed,
            rows_added,
            deletes_applied,
        })
    }

    /// An atomic snapshot of the committed state (staged samples and
    /// deletes are invisible until committed). Cheap: segments are
    /// shared, tombstones are copied once into a shared sorted slice.
    pub fn reader(&self) -> IndexReader {
        IndexReader {
            scheme: self.scheme,
            params: self.params,
            generation: self.generation,
            next_id: self.committed_next_id(),
            segments: Arc::new(self.segments.clone()),
            tombstones: Arc::new(self.tombstones.iter().copied().collect()),
        }
    }

    /// Per-segment stats of the committed state (the compactor's input).
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        segment_stats_with(&self.segments, |id| self.tombstones.contains(&id))
    }

    /// Merge every live segment into one and drop all tombstoned rows —
    /// the "compact everything now" convenience (a full [`Compactor`]
    /// applies a size-tiered policy instead).
    pub fn compact_all(&mut self) -> IndexResult<CompactionSummary> {
        let all: Vec<u64> = self.segments.iter().map(|s| s.id()).collect();
        if all.len() < 2 && self.tombstones.is_empty() {
            return Ok(CompactionSummary {
                generation: self.generation,
                segments_before: all.len(),
                segments_after: all.len(),
                ..Default::default()
            });
        }
        self.compact_groups(vec![all])
    }

    /// Merge each group of segment ids into one new segment, dropping
    /// tombstoned rows. Groups must be disjoint; ids must be live.
    pub(crate) fn compact_groups(
        &mut self,
        groups: Vec<Vec<u64>>,
    ) -> IndexResult<CompactionSummary> {
        if !self.staged.is_empty() || !self.staged_deletes.is_empty() {
            return Err(IndexError::InvalidConfig(
                "commit staged samples/deletes before compacting".into(),
            ));
        }
        let groups: Vec<Vec<u64>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
        let segments_before = self.segments.len();
        if groups.is_empty() {
            return Ok(CompactionSummary {
                generation: self.generation,
                segments_before,
                segments_after: segments_before,
                ..Default::default()
            });
        }
        let mut claimed = BTreeSet::new();
        for id in groups.iter().flatten() {
            if !claimed.insert(*id) {
                return Err(IndexError::InvalidConfig(format!(
                    "segment {id} appears in two compaction groups"
                )));
            }
            if !self.segments.iter().any(|s| s.id() == *id) {
                return Err(IndexError::InvalidConfig(format!(
                    "compaction group references unknown segment {id}"
                )));
            }
        }
        let mut summary = CompactionSummary {
            groups_merged: groups.len(),
            segments_before,
            ..Default::default()
        };
        for group in groups {
            let mut members = Vec::with_capacity(group.len());
            self.segments.retain(|seg| {
                if group.contains(&seg.id()) {
                    members.push(seg.clone());
                    false
                } else {
                    true
                }
            });
            for seg in &members {
                self.segment_crcs.remove(&seg.id());
                self.persisted.remove(&seg.id());
            }
            let mut rows: Vec<SegmentRow> = Vec::new();
            for seg in &members {
                rows.extend(seg.live_rows(|id| self.tombstones.contains(&id)));
                // Dropped rows no longer exist anywhere (ids are never
                // reused), so their tombstones have done their job.
                for id in seg.global_ids() {
                    if self.tombstones.remove(id) {
                        summary.tombstones_purged += 1;
                    }
                }
            }
            rows.sort_by_key(|r| r.global_id);
            if rows.is_empty() {
                continue; // every row was tombstoned — nothing to write
            }
            let merged = Segment::from_rows(self.next_segment_id, self.scheme, self.params, rows)?;
            self.next_segment_id += 1;
            summary.rows_written += merged.n_rows();
            self.segments.push(SharedSegment::new(merged));
        }
        // Keep segments ordered by their first global id so snapshots
        // enumerate rows in corpus order regardless of merge history.
        self.segments.sort_by_key(|s| s.global_ids().first().copied().map_or(u32::MAX, |id| id));
        self.generation += 1;
        self.dirty = true;
        self.persist()?;
        summary.generation = self.generation;
        summary.segments_after = self.segments.len();
        Ok(summary)
    }

    /// Start a compaction that will merge off-thread: validates the
    /// groups against the committed state and captures everything the
    /// merge needs (member segment handles, a tombstone snapshot,
    /// reserved ids for the merged segments) so [`Self::apply_compaction`]
    /// can later swap the result in under the writer lock. Returns
    /// `None` when the plan is empty. Staged samples and deletes may
    /// exist: compaction only touches committed state.
    pub(crate) fn begin_compaction(
        &mut self,
        groups: Vec<Vec<u64>>,
    ) -> IndexResult<Option<CompactionTask>> {
        let groups: Vec<Vec<u64>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
        if groups.is_empty() {
            return Ok(None);
        }
        let mut claimed = BTreeSet::new();
        for id in groups.iter().flatten() {
            if !claimed.insert(*id) {
                return Err(IndexError::InvalidConfig(format!(
                    "segment {id} appears in two compaction groups"
                )));
            }
            if !self.segments.iter().any(|s| s.id() == *id) {
                return Err(IndexError::InvalidConfig(format!(
                    "compaction group references unknown segment {id}"
                )));
            }
        }
        let groups = groups
            .into_iter()
            .map(|group| {
                let members: Vec<SharedSegment> =
                    self.segments.iter().filter(|s| group.contains(&s.id())).cloned().collect();
                let merged_id = self.next_segment_id;
                self.next_segment_id += 1;
                (merged_id, members)
            })
            .collect();
        Ok(Some(CompactionTask {
            scheme: self.scheme,
            params: self.params,
            groups,
            tombstones: self.tombstones.iter().copied().collect(),
        }))
    }

    /// Swap the result of an off-thread merge into the committed state,
    /// atomically under the writer's exclusive borrow: members out,
    /// merged segments in, one generation bump, one persist. Returns
    /// `Ok(None)` — changing nothing — when the task went stale (a
    /// member segment is no longer live, e.g. a concurrent
    /// `compact_all` already merged it). Tombstones that arrived on
    /// member rows *after* the merge snapshot stay in the tombstone set
    /// and keep filtering the (still stored) rows, so late deletes are
    /// never lost.
    pub(crate) fn apply_compaction(
        &mut self,
        built: BuiltCompaction,
    ) -> IndexResult<Option<CompactionSummary>> {
        let live = |id: u64| self.segments.iter().any(|s| s.id() == id);
        if built.merged.iter().any(|m| m.member_ids.iter().any(|&id| !live(id))) {
            return Ok(None);
        }
        let mut summary = CompactionSummary {
            groups_merged: built.merged.len(),
            segments_before: self.segments.len(),
            rows_written: built.rows_written,
            ..Default::default()
        };
        for group in built.merged {
            self.segments.retain(|seg| !group.member_ids.contains(&seg.id()));
            for id in &group.member_ids {
                self.segment_crcs.remove(id);
                self.persisted.remove(id);
            }
            for id in &group.purged {
                if self.tombstones.remove(id) {
                    summary.tombstones_purged += 1;
                }
            }
            if let Some(merged) = group.merged {
                self.segments.push(SharedSegment::new(merged));
            }
        }
        self.segments.sort_by_key(|s| s.global_ids().first().copied().map_or(u32::MAX, |id| id));
        self.generation += 1;
        self.dirty = true;
        self.persist()?;
        summary.generation = self.generation;
        summary.segments_after = self.segments.len();
        Ok(Some(summary))
    }

    /// Rewrite the backing file keeping only live segments — reclaims
    /// the space of dead blocks (compacted-away segments, superseded
    /// manifests). State and generation are unchanged. A true no-op —
    /// no rewrite, no mtime churn — when there is no backing file or
    /// the file is already a minimal image of the live state.
    pub fn vacuum(&mut self) -> IndexResult<VacuumReport> {
        if self.path.is_none() || self.clean {
            return Ok(VacuumReport::default());
        }
        let before = self.valid_len;
        self.rewrite_file()?;
        Ok(VacuumReport { bytes_reclaimed: before.saturating_sub(self.valid_len), rewritten: true })
    }

    fn manifest_record(&mut self) -> ManifestRecord {
        let mut refs = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            let crc = *self
                .segment_crcs
                .entry(seg.id())
                .or_insert_with(|| fnv1a64(&container::segment_payload(seg)));
            refs.push(ManifestSegmentRef { id: seg.id(), rows: seg.n_rows() as u32, crc });
        }
        ManifestRecord {
            generation: self.generation,
            scheme: self.scheme,
            params: self.params,
            next_id: self.committed_next_id(),
            segments: refs,
            tombstones: self.tombstones.iter().copied().collect(),
        }
    }

    /// The whole state as one fresh v3 file (header, live segments in
    /// order, manifest last).
    fn full_file_bytes(&mut self) -> Vec<u8> {
        let mut out = container::v3_header_bytes();
        for seg in self.segments.clone() {
            let payload = container::segment_payload(&seg);
            self.segment_crcs.insert(seg.id(), fnv1a64(&payload));
            out.extend(container::block_bytes(container::BLOCK_SEGMENT, &payload));
        }
        let manifest = self.manifest_record();
        out.extend(container::block_bytes(
            container::BLOCK_MANIFEST,
            &container::manifest_payload(&manifest),
        ));
        out
    }

    /// Replace the backing file wholesale with a fresh v3 image of the
    /// current state, atomically: the bytes land in a temp file in the
    /// same directory, are fsynced, and are renamed over the original —
    /// a crash at any point leaves either the old file or the new one,
    /// never a torn mix. Used by `create_at`, `vacuum` and the legacy
    /// v1/v2 upgrade.
    fn rewrite_file(&mut self) -> IndexResult<()> {
        let Some(path) = self.path.clone() else { return Ok(()) };
        let bytes = self.full_file_bytes();
        self.storage.replace(&path, &bytes)?;
        self.valid_len = bytes.len() as u64;
        self.needs_rewrite = false;
        self.persisted = self.segments.iter().map(|s| s.id()).collect();
        self.dirty = false;
        self.clean = true;
        Ok(())
    }

    /// Flush the committed state to the backing file: append every live
    /// segment block not yet on disk, then the manifest block — strictly
    /// in that order and fsynced, so every crash point leaves the
    /// previous manifest the last valid one and a returned commit is
    /// durable. Any torn tail from an earlier crash (or an earlier
    /// failed persist) is truncated first; a failed persist leaves
    /// memory ahead of disk, and the next successful one writes the
    /// missing segment blocks before the manifest that references them.
    fn persist(&mut self) -> IndexResult<()> {
        let Some(path) = self.path.clone() else {
            self.dirty = false; // in-memory writers have nothing to flush
            return Ok(());
        };
        if self.needs_rewrite {
            // Legacy v1/v2 file: replace it with a fresh v3 container.
            return self.rewrite_file();
        }
        let mut tail = Vec::new();
        let mut newly_persisted = Vec::new();
        for seg in self.segments.clone() {
            if self.persisted.contains(&seg.id()) {
                continue;
            }
            let payload = container::segment_payload(&seg);
            self.segment_crcs.insert(seg.id(), fnv1a64(&payload));
            tail.extend(container::block_bytes(container::BLOCK_SEGMENT, &payload));
            newly_persisted.push(seg.id());
        }
        let manifest = self.manifest_record();
        tail.extend(container::block_bytes(
            container::BLOCK_MANIFEST,
            &container::manifest_payload(&manifest),
        ));
        self.storage.append_tail(&path, self.valid_len, &tail)?;
        self.valid_len += tail.len() as u64;
        self.persisted.extend(newly_persisted);
        self.dirty = false;
        // The append superseded the previous manifest block, which is
        // now dead weight a vacuum could reclaim.
        self.clean = false;
        Ok(())
    }
}

/// A compaction captured by [`IndexWriter::begin_compaction`]: everything
/// the off-thread merge needs, decoupled from the writer so the writer
/// lock is free while bucket tables are rebuilt.
#[derive(Debug)]
pub(crate) struct CompactionTask {
    scheme: SignatureScheme,
    params: LshParams,
    /// (reserved merged-segment id, member segments) per group.
    groups: Vec<(u64, Vec<SharedSegment>)>,
    /// Committed tombstones at capture time, sorted.
    tombstones: Vec<u32>,
}

/// One merged group of a [`BuiltCompaction`].
#[derive(Debug)]
pub(crate) struct BuiltGroup {
    /// The merged segment (`None` when every member row was tombstoned).
    merged: Option<Segment>,
    /// Ids of the member segments the merge replaces.
    member_ids: Vec<u64>,
    /// Tombstones whose rows the merge physically dropped.
    purged: Vec<u32>,
}

/// The result of an off-thread merge, ready for
/// [`IndexWriter::apply_compaction`].
#[derive(Debug)]
pub(crate) struct BuiltCompaction {
    merged: Vec<BuiltGroup>,
    rows_written: usize,
}

impl CompactionTask {
    /// The CPU-heavy half of a compaction — merging live rows and
    /// rebuilding bucket tables — run *without* the writer lock.
    pub(crate) fn build(self) -> IndexResult<BuiltCompaction> {
        let mut out =
            BuiltCompaction { merged: Vec::with_capacity(self.groups.len()), rows_written: 0 };
        for (merged_id, members) in self.groups {
            let member_ids: Vec<u64> = members.iter().map(|s| s.id()).collect();
            let mut rows: Vec<SegmentRow> = Vec::new();
            let mut purged = Vec::new();
            for seg in &members {
                rows.extend(seg.live_rows(|id| self.tombstones.binary_search(&id).is_ok()));
                purged.extend(
                    seg.global_ids()
                        .iter()
                        .copied()
                        .filter(|id| self.tombstones.binary_search(id).is_ok()),
                );
            }
            rows.sort_by_key(|r| r.global_id);
            let merged = if rows.is_empty() {
                None
            } else {
                let seg = Segment::from_rows(merged_id, self.scheme, self.params, rows)?;
                out.rows_written += seg.n_rows();
                Some(seg)
            };
            out.merged.push(BuiltGroup { merged, member_ids, purged });
        }
        Ok(out)
    }
}

/// The immutable half of the lifecycle: an atomic snapshot over sealed
/// segments and tombstones. Clones share everything.
#[derive(Debug, Clone)]
pub struct IndexReader {
    scheme: SignatureScheme,
    params: LshParams,
    generation: u64,
    next_id: u32,
    segments: Arc<Vec<SharedSegment>>,
    tombstones: Arc<Vec<u32>>,
}

impl IndexReader {
    /// Open an index file read-only at its newest intact manifest
    /// generation (v1/v2 files open as a single segment).
    pub fn open(path: impl AsRef<Path>) -> IndexResult<Self> {
        IndexReader::open_with_report(path).map(|(r, _)| r)
    }

    /// [`Self::open`], also reporting what recovery did.
    pub fn open_with_report(path: impl AsRef<Path>) -> IndexResult<(Self, RecoveryReport)> {
        let (state, report) = load_state(std::fs::read(path)?)?;
        let reader = IndexReader {
            scheme: state.scheme,
            params: state.params,
            generation: state.generation,
            next_id: state.next_id,
            segments: Arc::new(state.segments),
            tombstones: Arc::new(state.tombstones),
        };
        Ok((reader, report))
    }

    /// A snapshot over one sealed segment (the monolithic
    /// `SketchIndex`'s bridge into the segmented code paths).
    pub(crate) fn from_single(segment: SharedSegment) -> Self {
        IndexReader {
            scheme: *segment.scheme(),
            params: *segment.params(),
            generation: 0,
            next_id: segment.global_ids().last().map_or(0, |&id| id + 1),
            segments: Arc::new(vec![segment]),
            tombstones: Arc::new(Vec::new()),
        }
    }

    /// The signature scheme shared by all segments.
    pub fn scheme(&self) -> &SignatureScheme {
        &self.scheme
    }

    /// The banding parameters shared by all segments.
    pub fn params(&self) -> &LshParams {
        &self.params
    }

    /// The manifest generation this snapshot observes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// First global id not assigned when the snapshot was taken.
    pub fn id_bound(&self) -> u32 {
        self.next_id
    }

    /// The live segments, ordered by first global id.
    pub fn segments(&self) -> &[SharedSegment] {
        &self.segments
    }

    /// The shared segment-set handle backing this snapshot. The serving
    /// frontend downgrades it to a `Weak` to learn when the last reader
    /// pinned to a pre-compaction generation has dropped (which is when
    /// a deferred vacuum may run).
    pub(crate) fn segments_handle(&self) -> &Arc<Vec<SharedSegment>> {
        &self.segments
    }

    /// Rows stored across all segments (tombstoned rows included).
    pub fn n_rows(&self) -> usize {
        self.segments.iter().map(|s| s.n_rows()).sum()
    }

    /// Live samples (stored rows minus tombstones).
    pub fn n_live(&self) -> usize {
        self.n_rows() - self.tombstones.len()
    }

    /// The tombstoned global ids, sorted.
    pub fn tombstones(&self) -> &[u32] {
        &self.tombstones
    }

    /// Whether global id `id` is tombstoned.
    pub fn is_deleted(&self, id: u32) -> bool {
        self.tombstones.binary_search(&id).is_ok()
    }

    /// Whether global id `id` is a live sample of this snapshot.
    pub fn is_live(&self, id: u32) -> bool {
        !self.is_deleted(id) && self.locate(id).is_some()
    }

    /// All live global ids, ascending.
    pub fn live_ids(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n_live());
        for seg in self.segments.iter() {
            out.extend(seg.global_ids().iter().copied().filter(|&id| !self.is_deleted(id)));
        }
        out.sort_unstable();
        out
    }

    /// Which segment (index into [`Self::segments`]) and local row hold
    /// global id `id`, tombstoned or not.
    pub fn locate(&self, id: u32) -> Option<(usize, usize)> {
        self.segments
            .iter()
            .enumerate()
            .find_map(|(s, seg)| seg.local_of(id).map(|local| (s, local)))
    }

    /// The signature of live global id `id` (`None` when unknown or
    /// tombstoned).
    pub fn signature_of(&self, id: u32) -> Option<&MinHashSignature> {
        if self.is_deleted(id) {
            return None;
        }
        self.locate(id).map(|(s, local)| self.segments[s].signature(local))
    }

    /// The name of live global id `id`.
    pub fn name_of(&self, id: u32) -> Option<&str> {
        if self.is_deleted(id) {
            return None;
        }
        self.locate(id).map(|(s, local)| self.segments[s].names()[local].as_str())
    }

    /// Check that a query-side scheme matches this index's scheme
    /// (see `SketchIndex::check_query_scheme`).
    pub fn check_query_scheme(&self, query_scheme: &SignatureScheme) -> IndexResult<()> {
        if query_scheme != &self.scheme {
            return Err(IndexError::SignerMismatch {
                index_scheme: self.scheme.describe(),
                query_scheme: query_scheme.describe(),
            });
        }
        Ok(())
    }

    /// View this snapshot as a monolithic [`SketchIndex`] — possible
    /// exactly when it is one segment, tombstone-free, with dense global
    /// ids `0..n` (e.g. a fresh single commit, or any fully compacted
    /// delete-free lifecycle). Useful for exporting to the v2
    /// single-index container format.
    pub fn to_monolithic(&self) -> Option<crate::build::SketchIndex> {
        if self.segments.len() != 1 || !self.tombstones.is_empty() {
            return None;
        }
        let segment = &self.segments[0];
        let dense = segment.global_ids().iter().enumerate().all(|(i, &id)| id as usize == i);
        dense.then(|| crate::build::SketchIndex::from_segment(segment.clone()))
    }

    /// Per-segment stats under this snapshot's tombstones.
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        segment_stats_with(&self.segments, |id| self.is_deleted(id))
    }
}

/// Per-segment row/live counts under one tombstone predicate — shared by
/// the writer (compactor input) and reader (reporting) so the two views
/// can never diverge.
fn segment_stats_with<F: Fn(u32) -> bool>(
    segments: &[SharedSegment],
    is_deleted: F,
) -> Vec<SegmentStats> {
    segments
        .iter()
        .map(|seg| {
            let dead = seg.global_ids().iter().filter(|&&id| is_deleted(id)).count();
            SegmentStats {
                segment_id: seg.id(),
                rows: seg.n_rows(),
                live_rows: seg.n_rows() - dead,
            }
        })
        .collect()
}

/// The size-tiered compaction policy: segments are grouped into tiers by
/// live-row count (tier `t` holds segments with `factor^t ≤ rows <
/// factor^(t+1)`); any tier filling up with at least `min_merge`
/// segments is merged whole. Small commits therefore roll up
/// geometrically — the write amplification of the classic size-tiered
/// LSM shape — while large, settled segments are left alone, *except*
/// when tombstones pile up: a segment whose dead fraction exceeds
/// `rewrite_dead_pct` is rewritten on its own, so deletes against a
/// lone settled segment are still reclaimed (pure size tiering would
/// carry them forever, since a lone segment never fills its tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Merge a tier once it holds at least this many segments (≥ 2).
    pub min_merge: usize,
    /// Geometric tier width (≥ 2).
    pub tier_factor: usize,
    /// Rewrite a segment on its own once *strictly more* than this
    /// percentage of its stored rows are tombstoned (≤ 100; 100
    /// disables the trigger — a segment is never 100% + 1 dead).
    pub rewrite_dead_pct: u8,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { min_merge: 4, tier_factor: 4, rewrite_dead_pct: 25 }
    }
}

impl CompactionPolicy {
    /// Return a copy with the given geometric tier width (validated by
    /// [`Compactor::new`]; an autotuner's natural entry point).
    pub fn with_tier_factor(mut self, tier_factor: usize) -> Self {
        self.tier_factor = tier_factor;
        self
    }

    /// Return a copy with the given minimum merge width.
    pub fn with_min_merge(mut self, min_merge: usize) -> Self {
        self.min_merge = min_merge;
        self
    }

    /// Return a copy with the given dead-row rewrite trigger percentage.
    pub fn with_rewrite_dead_pct(mut self, pct: u8) -> Self {
        self.rewrite_dead_pct = pct;
        self
    }

    /// The tier of a segment with `live_rows` live rows.
    pub fn tier(&self, live_rows: usize) -> usize {
        let mut tier = 0usize;
        let mut x = live_rows.max(1);
        while x >= self.tier_factor {
            x /= self.tier_factor;
            tier += 1;
        }
        tier
    }
}

/// Merges segments under a [`CompactionPolicy`], dropping tombstoned
/// rows as it goes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Compactor {
    policy: CompactionPolicy,
}

impl Compactor {
    /// A compactor with the given policy.
    pub fn new(policy: CompactionPolicy) -> IndexResult<Self> {
        if policy.min_merge < 2 || policy.tier_factor < 2 {
            return Err(IndexError::InvalidConfig(format!(
                "compaction needs min_merge ≥ 2 and tier_factor ≥ 2 (got {} and {})",
                policy.min_merge, policy.tier_factor
            )));
        }
        if policy.rewrite_dead_pct > 100 {
            return Err(IndexError::InvalidConfig(format!(
                "rewrite_dead_pct is a percentage ≤ 100 (got {})",
                policy.rewrite_dead_pct
            )));
        }
        Ok(Compactor { policy })
    }

    /// The policy in force.
    pub fn policy(&self) -> &CompactionPolicy {
        &self.policy
    }

    /// Which segment groups the policy would merge, given per-segment
    /// stats: one group per over-full tier, in file order, plus a
    /// singleton rewrite for every tombstone-heavy segment (dead
    /// fraction strictly above `rewrite_dead_pct`) not already claimed
    /// by a tier merge.
    pub fn plan(&self, stats: &[SegmentStats]) -> Vec<Vec<u64>> {
        let mut tiers: std::collections::BTreeMap<usize, Vec<u64>> = Default::default();
        for s in stats {
            tiers.entry(self.policy.tier(s.live_rows)).or_default().push(s.segment_id);
        }
        let mut groups: Vec<Vec<u64>> =
            tiers.into_values().filter(|group| group.len() >= self.policy.min_merge).collect();
        let claimed: std::collections::BTreeSet<u64> = groups.iter().flatten().copied().collect();
        for s in stats {
            let dead = s.rows - s.live_rows;
            if !claimed.contains(&s.segment_id)
                && dead * 100 > s.rows * usize::from(self.policy.rewrite_dead_pct)
            {
                groups.push(vec![s.segment_id]);
            }
        }
        groups
    }

    /// Run one compaction pass over `writer`'s committed segments.
    pub fn compact(&self, writer: &mut IndexWriter) -> IndexResult<CompactionSummary> {
        let plan = self.plan(&writer.segment_stats());
        writer.compact_groups(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryEngine, QueryOptions};
    use crate::service::IndexOptions;
    use gas_core::minhash::SignerKind;

    fn config() -> IndexConfig {
        IndexConfig::default().with_signature_len(64).with_threshold(0.5)
    }

    fn family(base: u64, private: u64) -> Vec<u64> {
        let mut s: Vec<u64> = (base..base + 300).collect();
        s.extend(private..private + 30);
        s
    }

    fn unique_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gas_lifecycle_{tag}_{}_{n}.gidx", std::process::id()))
    }

    #[test]
    fn staged_work_is_invisible_until_commit() {
        let mut w = IndexOptions::from_config(config()).open_writer().unwrap();
        let id0 = w.add("a", family(0, 50_000)).unwrap();
        assert_eq!(id0, 0);
        assert_eq!(w.staged_samples(), 1);
        assert_eq!(w.reader().n_live(), 0, "staged rows must not be served");
        let summary = w.commit().unwrap();
        assert_eq!(summary.generation, 1);
        assert_eq!(summary.rows_added, 1);
        assert!(summary.sealed_segment.is_some());
        let snapshot = w.reader();
        assert_eq!(snapshot.n_live(), 1);
        // The snapshot is atomic: later commits do not leak into it.
        w.add("b", family(0, 60_000)).unwrap();
        w.commit().unwrap();
        assert_eq!(snapshot.n_live(), 1);
        assert_eq!(w.reader().n_live(), 2);
        assert_eq!(w.reader().segments().len(), 2);
        assert_eq!(w.generation(), 2);
        // An empty commit is a no-op.
        let noop = w.commit().unwrap();
        assert_eq!(noop.generation, 2);
        assert_eq!(noop.sealed_segment, None);
    }

    #[test]
    fn incremental_adds_answer_like_a_fresh_build() {
        // Three commits vs one monolithic build over the same corpus:
        // identical global ids, identical answers.
        let sets: Vec<Vec<u64>> = (0..9u64).map(|i| family((i / 3) * 100_000, 7_000 + i)).collect();
        let collection = gas_core::indicator::SampleCollection::from_sets(sets.clone()).unwrap();
        let fresh = IndexOptions::from_config(config()).build_index(&collection).unwrap();

        let mut w = IndexOptions::from_config(config()).open_writer().unwrap();
        for batch in sets.chunks(4) {
            for s in batch {
                w.add(format!("sample_{}", w.id_bound()), s.clone()).unwrap();
            }
            w.commit().unwrap();
        }
        let reader = w.reader();
        assert_eq!(reader.segments().len(), 3);
        assert_eq!(reader.n_live(), 9);
        let opts = QueryOptions { top_k: 4, ..Default::default() };
        let fresh_engine = QueryEngine::new(&fresh);
        let incr_engine = QueryEngine::snapshot(reader.clone());
        for q in &sets {
            assert_eq!(incr_engine.query(q, &opts).unwrap(), fresh_engine.query(q, &opts).unwrap());
        }
        // Signatures are reachable by global id and match the fresh ones.
        for id in 0..9u32 {
            assert_eq!(reader.signature_of(id).unwrap(), fresh.signature(id as usize));
            assert_eq!(reader.name_of(id).unwrap(), format!("sample_{id}"));
        }
        assert!(reader.signature_of(99).is_none());
    }

    #[test]
    fn commit_collection_equals_staged_adds_plus_commit() {
        let sets: Vec<Vec<u64>> = (0..5u64).map(|i| family(0, 800 * i)).collect();
        let collection = gas_core::indicator::SampleCollection::from_sets(sets.clone())
            .unwrap()
            .with_names((0..5).map(|i| format!("n{i}")).collect())
            .unwrap();
        let mut fast = IndexOptions::from_config(config()).open_writer().unwrap();
        let summary = fast.commit_collection(&collection).unwrap();
        assert_eq!(summary.rows_added, 5);
        let mut staged = IndexOptions::from_config(config()).open_writer().unwrap();
        staged.add_collection(&collection).unwrap();
        staged.commit().unwrap();
        assert_eq!(fast.reader().segments(), staged.reader().segments());
        assert_eq!(fast.id_bound(), staged.id_bound());
        // A second collection appends at the id high-water mark.
        fast.commit_collection(&collection).unwrap();
        assert_eq!(fast.id_bound(), 10);
        assert_eq!(fast.reader().segments()[1].global_ids(), &[5, 6, 7, 8, 9]);
        // Pending staged samples make the fast path ambiguous: rejected.
        fast.add("pending", family(0, 77)).unwrap();
        assert!(fast.commit_collection(&collection).is_err());
    }

    #[test]
    fn deletes_tombstone_then_compaction_drops_rows() {
        let mut w = IndexOptions::from_config(config()).open_writer().unwrap();
        for i in 0..6u64 {
            w.add(format!("s{i}"), family(0, 1_000 * i)).unwrap();
        }
        w.commit().unwrap();
        // Delete validation: unknown, staged, double.
        assert!(matches!(w.delete(99), Err(IndexError::UnknownSample { .. })));
        w.add("staged", family(0, 90_000)).unwrap();
        assert!(matches!(w.delete(6), Err(IndexError::UnknownSample { .. })));
        w.commit().unwrap();
        w.delete(2).unwrap();
        assert!(matches!(w.delete(2), Err(IndexError::UnknownSample { .. })));
        let summary = w.commit().unwrap();
        assert_eq!(summary.deletes_applied, 1);
        assert_eq!(summary.sealed_segment, None, "deletes-only commits seal no segment");

        let reader = w.reader();
        assert_eq!(reader.n_live(), 6);
        assert!(reader.is_deleted(2));
        assert!(!reader.is_live(2));
        assert_eq!(reader.live_ids(), vec![0, 1, 3, 4, 5, 6]);
        // Tombstoned rows never surface as answers.
        let engine = QueryEngine::snapshot(reader);
        let opts = QueryOptions { top_k: 7, ..Default::default() };
        let hits = engine.query(&family(0, 2_000), &opts).unwrap();
        assert!(hits.iter().all(|n| n.id != 2), "{hits:?}");

        // Compaction drops the row and purges the tombstone.
        let summary = w.compact_all().unwrap();
        assert_eq!(summary.segments_before, 2);
        assert_eq!(summary.segments_after, 1);
        assert_eq!(summary.tombstones_purged, 1);
        assert_eq!(summary.rows_written, 6);
        let reader = w.reader();
        assert_eq!(reader.n_rows(), 6, "the dropped row is physically gone");
        assert!(reader.tombstones().is_empty());
        assert_eq!(reader.live_ids(), vec![0, 1, 3, 4, 5, 6]);
        let after = QueryEngine::snapshot(reader).query(&family(0, 2_000), &opts).unwrap();
        assert_eq!(after, hits, "compaction must not change answers");
        // Deleting an id that was compacted away stays an error.
        assert!(matches!(w.delete(2), Err(IndexError::UnknownSample { .. })));
    }

    #[test]
    fn size_tiered_policy_merges_full_tiers_only() {
        let policy = CompactionPolicy { min_merge: 2, tier_factor: 4, ..Default::default() };
        assert_eq!(policy.tier(0), 0);
        assert_eq!(policy.tier(3), 0);
        assert_eq!(policy.tier(4), 1);
        assert_eq!(policy.tier(15), 1);
        assert_eq!(policy.tier(16), 2);
        let compactor = Compactor::new(policy).unwrap();
        let stats =
            |id: u64, live: usize| SegmentStats { segment_id: id, rows: live, live_rows: live };
        // Two tier-0 segments merge; the lone tier-2 segment is left alone.
        let plan = compactor.plan(&[stats(1, 2), stats(2, 3), stats(3, 40)]);
        assert_eq!(plan, vec![vec![1, 2]]);
        assert!(compactor.plan(&[stats(1, 2), stats(2, 40)]).is_empty());
        assert!(Compactor::new(CompactionPolicy {
            min_merge: 1,
            tier_factor: 4,
            ..Default::default()
        })
        .is_err());
        assert!(Compactor::new(CompactionPolicy {
            min_merge: 2,
            tier_factor: 1,
            ..Default::default()
        })
        .is_err());
        assert!(Compactor::new(CompactionPolicy { rewrite_dead_pct: 101, ..Default::default() })
            .is_err());
    }

    #[test]
    fn compaction_policy_builders_set_each_knob() {
        let p = CompactionPolicy::default()
            .with_tier_factor(6)
            .with_min_merge(3)
            .with_rewrite_dead_pct(50);
        assert_eq!((p.tier_factor, p.min_merge, p.rewrite_dead_pct), (6, 3, 50));
        // Builders feed the same validation as literal construction.
        assert!(Compactor::new(CompactionPolicy::default().with_tier_factor(1)).is_err());
        assert!(Compactor::new(p).is_ok());
    }

    #[test]
    fn tombstone_heavy_segments_are_rewritten_even_alone() {
        let compactor = Compactor::new(CompactionPolicy::default()).unwrap();
        let stats = |id: u64, rows: usize, live: usize| SegmentStats {
            segment_id: id,
            rows,
            live_rows: live,
        };
        // A lone settled segment with > 25% of its rows tombstoned is
        // rewritten on its own; at exactly 25% it is left alone.
        assert_eq!(compactor.plan(&[stats(7, 100, 74)]), vec![vec![7]]);
        assert!(compactor.plan(&[stats(7, 100, 75)]).is_empty());
        // A segment already claimed by a tier merge is not double-planned.
        let tier0: Vec<SegmentStats> = (1..=4).map(|id| stats(id, 4, 2)).collect(); // 50% dead, but a full tier
        assert_eq!(compactor.plan(&tier0), vec![vec![1, 2, 3, 4]]);
        // The trigger can be disabled outright.
        let off = Compactor::new(CompactionPolicy { rewrite_dead_pct: 100, ..Default::default() })
            .unwrap();
        assert!(off.plan(&[stats(7, 100, 1)]).is_empty());
    }

    #[test]
    fn compactor_rolls_small_segments_up_and_answers_survive() {
        let mut w = IndexOptions::from_config(config()).open_writer().unwrap();
        // Eight one-sample commits: eight tier-0 segments.
        for i in 0..8u64 {
            w.add(format!("s{i}"), family((i / 4) * 100_000, 500 + 40 * i)).unwrap();
            w.commit().unwrap();
        }
        assert_eq!(w.reader().segments().len(), 8);
        let before = QueryEngine::snapshot(w.reader())
            .query(&family(0, 520), &QueryOptions { top_k: 4, ..Default::default() })
            .unwrap();
        let compactor =
            Compactor::new(CompactionPolicy { min_merge: 4, tier_factor: 4, ..Default::default() })
                .unwrap();
        let summary = compactor.compact(&mut w).unwrap();
        assert_eq!(summary.groups_merged, 1, "all eight singles share tier 0");
        assert_eq!(summary.segments_after, 1);
        let after = QueryEngine::snapshot(w.reader())
            .query(&family(0, 520), &QueryOptions { top_k: 4, ..Default::default() })
            .unwrap();
        assert_eq!(after, before);
        // Compacting with staged work is refused.
        w.add("pending", family(0, 99_000)).unwrap();
        assert!(compactor.compact(&mut w).is_err());
    }

    #[test]
    fn file_backed_lifecycle_round_trips_and_reports_recovery() {
        let path = unique_path("roundtrip");
        let mut w = IndexOptions::from_config(config()).create_writer_at(&path).unwrap();
        // The freshly created file is already openable (generation 0).
        let (empty, report) = IndexReader::open_with_report(&path).unwrap();
        assert_eq!(empty.generation(), 0);
        assert_eq!(empty.n_live(), 0);
        assert_eq!(report, RecoveryReport { generation: 0, torn_bytes: 0, upgraded_legacy: false });

        for i in 0..5u64 {
            w.add(format!("s{i}"), family(0, 700 * (i + 1))).unwrap();
            w.commit().unwrap();
        }
        w.delete(1).unwrap();
        w.commit().unwrap();
        let want = QueryEngine::snapshot(w.reader())
            .query(&family(0, 1_400), &QueryOptions { top_k: 4, ..Default::default() })
            .unwrap();

        // Reader and writer reopen at the same generation with the same
        // answers; a writer reopening can keep committing.
        let reader = IndexReader::open(&path).unwrap();
        assert_eq!(reader.generation(), 6);
        assert_eq!(reader.n_live(), 4);
        assert!(reader.is_deleted(1));
        let got = QueryEngine::snapshot(reader.clone())
            .query(&family(0, 1_400), &QueryOptions { top_k: 4, ..Default::default() })
            .unwrap();
        assert_eq!(got, want);

        let mut reopened = IndexWriter::open(&path).unwrap();
        assert_eq!(reopened.generation(), 6);
        assert_eq!(reopened.id_bound(), 5, "global ids resume where they left off");
        reopened.add("s5", family(0, 9_999)).unwrap();
        reopened.commit().unwrap();
        assert_eq!(IndexReader::open(&path).unwrap().n_live(), 5);
        let want = QueryEngine::snapshot(reopened.reader())
            .query(&family(0, 1_400), &QueryOptions { top_k: 4, ..Default::default() })
            .unwrap();

        // Compaction + vacuum shrink the file without changing answers.
        let len_before = std::fs::metadata(&path).unwrap().len();
        reopened.compact_all().unwrap();
        let reclaimed = reopened.vacuum().unwrap();
        assert!(reclaimed.rewritten, "post-compaction vacuum rewrites the file");
        assert!(reclaimed.bytes_reclaimed > 0, "vacuum reclaims compacted-away blocks");
        let len_after = std::fs::metadata(&path).unwrap().len();
        assert!(len_after < len_before);
        let got = QueryEngine::snapshot(IndexReader::open(&path).unwrap())
            .query(&family(0, 1_400), &QueryOptions { top_k: 4, ..Default::default() })
            .unwrap();
        assert_eq!(got, want);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_commit_tails_fall_back_to_the_previous_generation() {
        let path = unique_path("torn");
        let mut w = IndexOptions::from_config(config()).create_writer_at(&path).unwrap();
        w.add("a", family(0, 100)).unwrap();
        w.commit().unwrap();
        let good = std::fs::read(&path).unwrap();
        w.add("b", family(0, 200)).unwrap();
        w.commit().unwrap();
        let full = std::fs::read(&path).unwrap();
        assert!(full.len() > good.len());

        // Truncate inside the second commit: generation 1 survives.
        let torn = full[..good.len() + (full.len() - good.len()) / 2].to_vec();
        std::fs::write(&path, &torn).unwrap();
        let (reader, report) = IndexReader::open_with_report(&path).unwrap();
        assert_eq!(reader.generation(), 1);
        assert_eq!(reader.n_live(), 1);
        assert!(report.torn_bytes > 0);

        // A writer reopening over the torn tail truncates it and commits
        // cleanly on top.
        let mut recovered = IndexWriter::open(&path).unwrap();
        assert_eq!(recovered.generation(), 1);
        recovered.add("b2", family(0, 300)).unwrap();
        recovered.commit().unwrap();
        let healed = IndexReader::open_with_report(&path).unwrap();
        assert_eq!(healed.0.generation(), 2);
        assert_eq!(healed.0.n_live(), 2);
        assert_eq!(healed.1.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_failed_persist_is_repaired_by_the_next_successful_commit() {
        // Simulate a transient I/O failure on one commit by swapping the
        // backing file for a directory, then restoring it. The failed
        // commit's segment lives only in memory; every later persist must
        // write it to disk *before* any manifest that references it, or
        // the whole file would scan as corrupt.
        let path = unique_path("persistfail");
        let mut w = IndexOptions::from_config(config()).create_writer_at(&path).unwrap();
        w.add("a", family(0, 100)).unwrap();
        w.commit().unwrap();
        let good = std::fs::read(&path).unwrap();

        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir(&path).unwrap();
        w.add("b", family(0, 200)).unwrap();
        assert!(matches!(w.commit(), Err(IndexError::Io(_))));
        assert_eq!(w.reader().n_live(), 2, "memory is ahead of disk after the failure");

        // Restore the last good bytes; an otherwise-empty commit retries
        // the flush and heals the divergence.
        std::fs::remove_dir(&path).unwrap();
        std::fs::write(&path, &good).unwrap();
        w.commit().unwrap();
        let healed = IndexReader::open(&path).unwrap();
        assert_eq!(healed.n_live(), 2);
        assert_eq!(healed.generation(), w.generation());

        // And ordinary commits keep working on top.
        w.add("c", family(0, 300)).unwrap();
        w.commit().unwrap();
        let reopened = IndexReader::open(&path).unwrap();
        assert_eq!(reopened.n_live(), 3);
        assert_eq!(reopened.segments().len(), 3);
        assert_eq!(reopened.generation(), w.generation());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_containers_open_as_a_single_segment_and_upgrade_on_commit() {
        let sets: Vec<Vec<u64>> = (0..4u64).map(|i| family(0, 400 * (i + 1))).collect();
        let collection = gas_core::indicator::SampleCollection::from_sets(sets.clone()).unwrap();
        let cfg = config().with_signer(SignerKind::Oph);
        let index = IndexOptions::from_config(cfg).build_index(&collection).unwrap();
        let path = unique_path("legacy");
        index.write_to(&path).unwrap();

        let (reader, report) = IndexReader::open_with_report(&path).unwrap();
        assert!(report.upgraded_legacy);
        assert_eq!(reader.segments().len(), 1);
        assert_eq!(reader.n_live(), 4);
        assert_eq!(reader.scheme().kind(), SignerKind::Oph);
        let opts = QueryOptions { top_k: 3, ..Default::default() };
        assert_eq!(
            QueryEngine::snapshot(reader).query(&sets[0], &opts).unwrap(),
            QueryEngine::new(&index).query(&sets[0], &opts).unwrap(),
        );

        // A writer upgrade: open, add, commit — the file becomes v3.
        let mut w = IndexWriter::open(&path).unwrap();
        w.add("extra", family(0, 77_777)).unwrap();
        w.commit().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(container::container_version(&bytes).unwrap(), VERSION_SEGMENTED);
        let upgraded = IndexReader::open(&path).unwrap();
        assert_eq!(upgraded.n_live(), 5);
        assert_eq!(upgraded.segments().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_block_kinds_allow_read_only_opens_but_refuse_writers() {
        // A checksum-valid block of an unknown kind (a newer build's
        // data) after the last understood manifest: readers fall back to
        // that manifest, but a writer must refuse rather than truncate
        // the foreign bytes away on its next commit.
        let path = unique_path("foreign");
        let mut w = IndexOptions::from_config(config()).create_writer_at(&path).unwrap();
        w.add("a", family(0, 100)).unwrap();
        w.commit().unwrap();
        let generation = w.generation();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend(container::block_bytes(*b"FUT\0", b"from the future"));
        std::fs::write(&path, &bytes).unwrap();

        let (reader, report) = IndexReader::open_with_report(&path).unwrap();
        assert_eq!(reader.generation(), generation);
        assert_eq!(reader.n_live(), 1);
        assert!(report.torn_bytes > 0, "foreign bytes are reported, not hidden");
        assert!(matches!(IndexWriter::open(&path), Err(IndexError::ForeignBlocks { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn files_with_no_surviving_manifest_are_typed_errors() {
        let path = unique_path("nomanifest");
        // A bare v3 header with no blocks at all.
        std::fs::write(&path, container::v3_header_bytes()).unwrap();
        assert!(matches!(IndexReader::open(&path), Err(IndexError::NoLiveGeneration(_))));
        // Garbage that is not a container at all.
        std::fs::write(&path, b"not a container").unwrap();
        assert!(matches!(IndexReader::open(&path), Err(IndexError::BadMagic)));
        // An unsupported future version.
        let mut future = container::v3_header_bytes();
        future[8..12].copy_from_slice(&9u32.to_le_bytes());
        let crc = fnv1a64(&future[..12]);
        future[12..20].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(IndexReader::open(&path), Err(IndexError::UnsupportedVersion(9))));
        std::fs::remove_file(&path).ok();
    }

    // ---- chaos drills: every fault leaves a servable generation ----

    fn top1(path: &Path, probe: &[u64]) -> Vec<crate::query::Neighbor> {
        QueryEngine::snapshot(IndexReader::open(path).unwrap())
            .query(probe, &QueryOptions { top_k: 3, ..Default::default() })
            .unwrap()
    }

    #[test]
    fn vacuum_faults_leave_the_prior_generation_intact() {
        // The satellite pin: vacuum is write-temp-then-rename, so any
        // injected fault during the rewrite must leave the original file
        // byte-identical and servable, and a clean retry must succeed.
        let _chaos = crate::chaos_testing::chaos_on();
        use gas_chaos::{ChaosStorage, FaultKind, FaultPlan};
        let path = unique_path("chaosvac");
        let mut w = IndexOptions::from_config(config()).create_writer_at(&path).unwrap();
        for i in 0..4u64 {
            w.add(format!("s{i}"), family(0, 900 * (i + 1))).unwrap();
            w.commit().unwrap();
        }
        w.delete(2).unwrap();
        w.commit().unwrap();
        w.compact_all().unwrap();
        let probe = family(0, 1_800);
        let want = top1(&path, &probe);
        let good_bytes = std::fs::read(&path).unwrap();

        for (i, kind) in
            [FaultKind::IoError, FaultKind::ShortWrite, FaultKind::TornWrite, FaultKind::FsyncLoss]
                .into_iter()
                .enumerate()
        {
            let chaos = Arc::new(ChaosStorage::over_fs(
                FaultPlan::seeded(100 + i as u64, 0).script(0, kind),
            ));
            w.set_storage(chaos.clone());
            let err = w.vacuum().expect_err("scripted fault must surface");
            assert!(matches!(err, IndexError::Io(_)), "fault {kind:?} surfaced as {err:?}");
            assert!(chaos.ops_seen() > 0, "the fault site was exercised");
            // The original file is untouched: bit-identical, still
            // servable, same answers.
            assert_eq!(std::fs::read(&path).unwrap(), good_bytes, "fault {kind:?} mutated file");
            assert_eq!(top1(&path, &probe), want);
        }

        // With faults cleared the same vacuum completes and answers hold.
        w.set_storage(Arc::new(RealFs));
        let report = w.vacuum().unwrap();
        assert!(report.rewritten);
        assert_eq!(top1(&path, &probe), want);
        std::fs::remove_file(&path).ok();
        // ShortWrite/TornWrite leave a decoy torn temp file behind by
        // design (the crash image); sweep it.
        if let Some(dir) = path.parent() {
            for entry in std::fs::read_dir(dir).unwrap().flatten() {
                if entry.path().extension().is_some_and(|e| e == "chaos-torn") {
                    std::fs::remove_file(entry.path()).ok();
                }
            }
        }
    }

    #[test]
    fn a_chaos_torn_commit_falls_back_and_the_next_commit_heals() {
        // Tentpole requirement: a torn append mid-commit errors, the
        // reopened file serves the newest intact prior generation, and
        // the next successful commit heals the tail.
        let _chaos = crate::chaos_testing::chaos_on();
        use gas_chaos::{ChaosStorage, FaultKind, FaultPlan};
        let path = unique_path("chaostorn");
        let mut w = IndexOptions::from_config(config()).create_writer_at(&path).unwrap();
        w.add("a", family(0, 100)).unwrap();
        w.commit().unwrap();
        let probe = family(0, 100);
        let want = top1(&path, &probe);

        let chaos = Arc::new(ChaosStorage::over_fs(
            FaultPlan::seeded(7, 0).script(0, FaultKind::TornWrite),
        ));
        w.set_storage(chaos);
        w.add("b", family(0, 200)).unwrap();
        assert!(matches!(w.commit(), Err(IndexError::Io(_))));

        // The torn tail is recoverable: generation 1 still answers.
        let (reader, report) = IndexReader::open_with_report(&path).unwrap();
        assert_eq!(reader.generation(), 1);
        assert!(report.torn_bytes > 0, "the torn prefix is visible to recovery");
        assert_eq!(top1(&path, &probe), want);

        // Clearing the fault and committing again persists everything
        // the writer holds in memory, torn tail truncated.
        w.set_storage(Arc::new(RealFs));
        w.add("c", family(0, 300)).unwrap();
        w.commit().unwrap();
        let (healed, report) = IndexReader::open_with_report(&path).unwrap();
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(healed.n_live(), 3);
        assert_eq!(healed.generation(), w.generation());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_loss_is_silent_until_reopen_and_vacuum_heals() {
        // FsyncLoss is the lying-sync drill: the commit reports Ok but
        // only a prefix of the tail is durable. The writer's memory is
        // ahead of the disk; reopen falls back to the newest intact
        // generation, and a vacuum (full rewrite) re-syncs disk with
        // memory.
        let _chaos = crate::chaos_testing::chaos_on();
        use gas_chaos::{ChaosStorage, FaultKind, FaultPlan};
        let path = unique_path("chaosfsync");
        let mut w = IndexOptions::from_config(config()).create_writer_at(&path).unwrap();
        w.add("a", family(0, 100)).unwrap();
        w.commit().unwrap();
        let probe = family(0, 100);
        let want = top1(&path, &probe);

        let chaos = Arc::new(ChaosStorage::over_fs(
            FaultPlan::seeded(9, 0).script(0, FaultKind::FsyncLoss),
        ));
        w.set_storage(chaos);
        w.add("b", family(0, 200)).unwrap();
        w.commit().expect("a lying fsync reports success");
        assert_eq!(w.generation(), 2, "the writer believes the commit landed");

        // On disk only a prefix landed: reopen falls back to gen 1.
        let (reader, report) = IndexReader::open_with_report(&path).unwrap();
        assert_eq!(reader.generation(), 1);
        assert!(report.torn_bytes > 0);
        assert_eq!(top1(&path, &probe), want);

        // The writer still holds the full state; a vacuum rewrites the
        // file wholesale and disk catches back up.
        w.set_storage(Arc::new(RealFs));
        w.vacuum().unwrap();
        let (healed, report) = IndexReader::open_with_report(&path).unwrap();
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(healed.generation(), 2);
        assert_eq!(healed.n_live(), 2);
        std::fs::remove_file(&path).ok();
    }
}
