//! Building the LSH-banded sketch index over genome signatures.
//!
//! The index holds one k-mins MinHash signature per data sample plus, for
//! every band, a bucket table mapping the band's key (a hash of its `r`
//! signature rows) to the sorted list of sample ids whose signatures
//! produce that key. Buckets are stored flattened and key-sorted — binary
//! search at query time, plain little-endian pods at persistence time —
//! rather than as a hash map, so building, persisting and sharding all
//! traverse the same deterministic layout.

use std::collections::BTreeMap;

use gas_core::indicator::SampleCollection;
use gas_core::minhash::{splitmix64, MinHashSignature, SignatureScheme, SignerKind};
use serde::{Deserialize, Serialize};

use crate::error::{IndexError, IndexResult};
use crate::params::LshParams;
use crate::segment::{Segment, SharedSegment};

/// Configuration of an index build: signature size, signer, hash seed
/// and the target Jaccard threshold the banding is tuned for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Signature length (number of min-wise positions per sample).
    pub signature_len: usize,
    /// Hash seed shared by all signatures of the index.
    pub seed: u64,
    /// Target Jaccard threshold the band/row split is derived from.
    pub threshold: f64,
    /// Which signer produces the signatures: classical k-mins
    /// (`O(len·|set|)` hashes) or one-permutation hashing
    /// (`O(|set| + len)`, the build-throughput choice).
    pub signer: SignerKind,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            signature_len: 128,
            seed: 0x0067_6173_5F69_6478,
            threshold: 0.5,
            signer: SignerKind::KMins,
        }
    }
}

impl IndexConfig {
    /// Override the signature length.
    pub fn with_signature_len(mut self, len: usize) -> Self {
        self.signature_len = len;
        self
    }

    /// Override the hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the target threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Override the signer.
    pub fn with_signer(mut self, signer: SignerKind) -> Self {
        self.signer = signer;
        self
    }
}

/// One band's bucket table in flattened, key-sorted form.
///
/// `keys` is sorted and parallel to `offsets`: the ids of bucket
/// `keys[i]` are `ids[offsets[i] .. offsets[i + 1]]`, each list sorted
/// ascending. `u32` ids bound an index to 4 billion samples — far beyond
/// what one shard holds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandBuckets {
    keys: Vec<u64>,
    offsets: Vec<u32>,
    ids: Vec<u32>,
}

impl BandBuckets {
    /// Assemble from raw flattened parts (the persistence reader path),
    /// validating the structural invariants.
    pub fn from_raw_parts(keys: Vec<u64>, offsets: Vec<u32>, ids: Vec<u32>) -> IndexResult<Self> {
        if offsets.len() != keys.len() + 1 {
            return Err(IndexError::Corrupt {
                context: format!("{} offsets for {} bucket keys", offsets.len(), keys.len()),
            });
        }
        if offsets.first() != Some(&0) || *offsets.last().unwrap() as usize != ids.len() {
            return Err(IndexError::Corrupt {
                context: "bucket offsets do not span the id array".into(),
            });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(IndexError::Corrupt { context: "bucket offsets decrease".into() });
        }
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(IndexError::Corrupt {
                context: "bucket keys are not strictly increasing".into(),
            });
        }
        Ok(BandBuckets { keys, offsets, ids })
    }

    pub(crate) fn from_map(map: BTreeMap<u64, Vec<u32>>) -> Self {
        let mut keys = Vec::with_capacity(map.len());
        let mut offsets = Vec::with_capacity(map.len() + 1);
        offsets.push(0u32);
        let mut ids = Vec::new();
        for (key, members) in map {
            keys.push(key);
            ids.extend_from_slice(&members);
            offsets.push(ids.len() as u32);
        }
        BandBuckets { keys, offsets, ids }
    }

    /// Number of distinct buckets in this band.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the band has no buckets.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted bucket keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Bucket boundaries into [`Self::ids`].
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Concatenated bucket member ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The sample ids bucketed under `key` (empty when absent).
    pub fn get(&self, key: u64) -> &[u32] {
        match self.keys.binary_search(&key) {
            Ok(i) => {
                let lo = self.offsets[i] as usize;
                let hi = self.offsets[i + 1] as usize;
                &self.ids[lo..hi]
            }
            Err(_) => &[],
        }
    }
}

/// The monolithic sketch index: one sealed [`Segment`] whose global
/// sample ids are the dense `0..n` of the built collection.
///
/// Since the segmented-lifecycle redesign this is a thin convenience
/// wrapper — [`SketchIndex::build`] is literally an
/// [`IndexWriter`](crate::lifecycle::IndexWriter) staging the whole
/// collection followed by a single `commit()` — kept so one-shot callers
/// (build → persist → serve a static corpus) keep a direct API, and so
/// v1/v2 containers still deserialize into a ready-to-serve value.
/// Long-lived corpora that grow, shrink and compact should hold an
/// `IndexWriter` and take [`IndexReader`](crate::lifecycle::IndexReader)
/// snapshots instead.
#[derive(Debug, Clone)]
pub struct SketchIndex {
    segment: SharedSegment,
}

impl PartialEq for SketchIndex {
    /// Content equality: the segment id is lifecycle bookkeeping the
    /// v1/v2 container does not record, so it is ignored here (a rebuilt
    /// and a reloaded index compare equal).
    fn eq(&self, other: &Self) -> bool {
        self.segment.same_content(&other.segment)
    }
}

impl SketchIndex {
    /// Build the index over every sample of `collection`: an
    /// [`IndexWriter`](crate::lifecycle::IndexWriter) sealing the whole
    /// collection in one commit (the staging-free `commit_collection`
    /// path — signatures come straight off the collection's slices, no
    /// copies of the value sets are made).
    #[deprecated(since = "0.7.0", note = "construct through `IndexOptions::build_index` instead")]
    pub fn build(collection: &SampleCollection, config: &IndexConfig) -> IndexResult<Self> {
        SketchIndex::build_monolithic(collection, config)
    }

    /// The monolithic build path shared by [`Self::build`] (deprecated
    /// shim) and [`crate::service::IndexOptions::build_index`] (the
    /// public entry point).
    pub(crate) fn build_monolithic(
        collection: &SampleCollection,
        config: &IndexConfig,
    ) -> IndexResult<Self> {
        let mut writer = crate::lifecycle::IndexWriter::new_in_memory(config)?;
        writer.commit_collection(collection)?;
        Ok(writer.reader().to_monolithic().expect("one fresh commit is dense and tombstone-free"))
    }

    /// Wrap an already-sealed segment (the lifecycle layer's path into
    /// the monolithic convenience type).
    pub(crate) fn from_segment(segment: SharedSegment) -> Self {
        SketchIndex { segment }
    }

    /// The underlying sealed segment.
    pub(crate) fn segment(&self) -> &SharedSegment {
        &self.segment
    }

    /// A single-segment reader snapshot over this index (no tombstones,
    /// generation 0) — the bridge from the monolithic convenience API to
    /// every multi-segment code path (query engine, distributed
    /// serving).
    pub fn as_reader(&self) -> crate::lifecycle::IndexReader {
        crate::lifecycle::IndexReader::from_single(self.segment.clone())
    }

    /// Reassemble an index from its parts (the persistence reader path).
    pub fn from_parts(
        scheme: SignatureScheme,
        params: LshParams,
        signatures: Vec<MinHashSignature>,
        set_sizes: Vec<u64>,
        names: Vec<String>,
        bands: Vec<BandBuckets>,
    ) -> IndexResult<Self> {
        let global_ids = (0..signatures.len() as u32).collect();
        let segment = Segment::from_parts(
            0, scheme, params, global_ids, signatures, set_sizes, names, bands,
        )?;
        Ok(SketchIndex { segment: SharedSegment::new(segment) })
    }

    /// Number of indexed samples.
    pub fn n(&self) -> usize {
        self.segment.n_rows()
    }

    /// The signature scheme (signer kind + length + seed) shared by
    /// index and queries.
    pub fn scheme(&self) -> &SignatureScheme {
        self.segment.scheme()
    }

    /// Check that a query-side scheme matches this index's scheme.
    ///
    /// Signatures are only comparable position by position when they come
    /// from the *same* signer, length and seed; a query signed under any
    /// other scheme would silently score garbage, so mismatches surface
    /// as a typed [`IndexError::SignerMismatch`].
    pub fn check_query_scheme(&self, query_scheme: &SignatureScheme) -> IndexResult<()> {
        if query_scheme != self.segment.scheme() {
            return Err(IndexError::SignerMismatch {
                index_scheme: self.segment.scheme().describe(),
                query_scheme: query_scheme.describe(),
            });
        }
        Ok(())
    }

    /// The banding parameters.
    pub fn params(&self) -> &LshParams {
        self.segment.params()
    }

    /// Signature of sample `id` (sample ids are the segment's dense
    /// local rows here).
    pub fn signature(&self, id: usize) -> &MinHashSignature {
        self.segment.signature(id)
    }

    /// All signatures, id-ordered.
    pub fn signatures(&self) -> &[MinHashSignature] {
        self.segment.signatures()
    }

    /// Original set cardinalities, id-ordered.
    pub fn set_sizes(&self) -> &[u64] {
        self.segment.set_sizes()
    }

    /// Sample names, id-ordered.
    pub fn names(&self) -> &[String] {
        self.segment.names()
    }

    /// The bucket table of `band`.
    pub fn band(&self, band: usize) -> &BandBuckets {
        self.segment.band(band)
    }

    /// The bucket key of `sig` in `band`.
    pub fn band_key(&self, band: usize, sig: &MinHashSignature) -> u64 {
        band_key(self.segment.params(), band, sig)
    }

    /// Candidate ids for a query signature, probing only the bands
    /// `band_filter` admits (the distributed path passes its shard's
    /// bands; the local path passes `|_| true`). Returned sorted and
    /// deduplicated so candidate sets are deterministic.
    pub fn candidates_where<F: Fn(usize) -> bool>(
        &self,
        sig: &MinHashSignature,
        band_filter: F,
    ) -> Vec<u32> {
        self.segment.candidates_where(sig, band_filter)
    }

    /// Candidate ids for a query signature over all bands.
    pub fn candidates(&self, sig: &MinHashSignature) -> Vec<u32> {
        self.candidates_where(sig, |_| true)
    }
}

/// The bucket key of band `band`: the band index folded with the band's
/// `r` signature rows through the splitmix finalizer. Including the band
/// index means identical row values in different bands do not alias to
/// the same key space.
pub fn band_key(params: &LshParams, band: usize, sig: &MinHashSignature) -> u64 {
    debug_assert_eq!(sig.len(), params.signature_len());
    let lo = band * params.rows();
    let hi = lo + params.rows();
    let mut h = splitmix64(0xB16B_00B5 ^ band as u64);
    for &v in &sig.values()[lo..hi] {
        h = splitmix64(h ^ v);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::IndexOptions;

    fn family_collection() -> SampleCollection {
        // Two families of three near-duplicates plus one loner.
        let base_a: Vec<u64> = (0..400u64).collect();
        let base_b: Vec<u64> = (10_000..10_400u64).collect();
        let mut samples = Vec::new();
        for i in 0..3u64 {
            let mut s = base_a.clone();
            s.extend(5_000 + 10 * i..5_000 + 10 * i + 10);
            samples.push(s);
        }
        for i in 0..3u64 {
            let mut s = base_b.clone();
            s.extend(20_000 + 10 * i..20_000 + 10 * i + 10);
            samples.push(s);
        }
        samples.push((90_000..90_400u64).collect());
        SampleCollection::from_sets(samples).unwrap()
    }

    #[test]
    fn build_produces_consistent_tables() {
        let collection = family_collection();
        let config = IndexConfig::default().with_signature_len(64).with_threshold(0.5);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        assert_eq!(index.n(), 7);
        assert_eq!(index.params().signature_len(), 64);
        assert_eq!(index.set_sizes(), &collection.cardinalities()[..]);
        assert_eq!(index.names(), collection.names());
        // Every sample appears exactly once per band.
        for band in 0..index.params().bands() {
            let b = index.band(band);
            assert_eq!(b.ids().len(), 7);
            let mut seen: Vec<u32> = b.ids().to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..7).collect::<Vec<_>>());
            assert_eq!(b.offsets().len(), b.len() + 1);
            assert!(!b.is_empty());
        }
        // A sample is always a candidate for its own signature.
        for id in 0..7usize {
            let cands = index.candidates(index.signature(id));
            assert!(cands.contains(&(id as u32)), "sample {id} not its own candidate");
        }
    }

    #[test]
    fn near_duplicates_collide_and_strangers_do_not() {
        let collection = family_collection();
        let config = IndexConfig::default().with_signature_len(128).with_threshold(0.5);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        // Family members (J ≈ 0.95) must be candidates of each other.
        let cands = index.candidates(index.signature(0));
        assert!(cands.contains(&1) && cands.contains(&2), "family not retrieved: {cands:?}");
        // The loner shares no bucket with family A (J = 0).
        assert!(!cands.contains(&6), "disjoint loner retrieved: {cands:?}");
    }

    #[test]
    fn oph_indexes_retrieve_near_duplicates_too() {
        let collection = family_collection();
        let config = IndexConfig::default()
            .with_signature_len(128)
            .with_threshold(0.5)
            .with_signer(SignerKind::Oph);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        assert_eq!(index.scheme().kind(), SignerKind::Oph);
        let cands = index.candidates(index.signature(0));
        assert!(cands.contains(&1) && cands.contains(&2), "family not retrieved: {cands:?}");
        assert!(!cands.contains(&6), "disjoint loner retrieved: {cands:?}");
    }

    #[test]
    fn check_query_scheme_rejects_any_scheme_drift() {
        let collection = family_collection();
        let config = IndexConfig::default().with_signature_len(64).with_signer(SignerKind::Oph);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        assert!(index.check_query_scheme(index.scheme()).is_ok());
        let wrong_kind = index.scheme().with_kind(SignerKind::KMins);
        assert!(matches!(
            index.check_query_scheme(&wrong_kind),
            Err(IndexError::SignerMismatch { .. })
        ));
        let wrong_seed = index.scheme().with_seed(index.scheme().seed() ^ 1);
        assert!(matches!(
            index.check_query_scheme(&wrong_seed),
            Err(IndexError::SignerMismatch { .. })
        ));
        let wrong_len = SignatureScheme::new(32)
            .unwrap()
            .with_seed(index.scheme().seed())
            .with_kind(SignerKind::Oph);
        assert!(matches!(
            index.check_query_scheme(&wrong_len),
            Err(IndexError::SignerMismatch { .. })
        ));
    }

    #[test]
    fn band_keys_depend_on_band_and_rows() {
        let scheme = SignatureScheme::new(8).unwrap();
        let params = LshParams::new(4, 2).unwrap();
        let sig = scheme.sign(&(0..100u64).collect::<Vec<_>>());
        let k0 = band_key(&params, 0, &sig);
        let k1 = band_key(&params, 1, &sig);
        assert_ne!(k0, k1, "band index must enter the key");
        assert_eq!(k0, band_key(&params, 0, &sig), "keys are deterministic");
    }

    #[test]
    fn bucket_lookup_and_raw_parts_validation() {
        let b = BandBuckets::from_raw_parts(vec![10, 20], vec![0, 2, 3], vec![5, 7, 1]).unwrap();
        assert_eq!(b.get(10), &[5, 7]);
        assert_eq!(b.get(20), &[1]);
        assert_eq!(b.get(15), &[] as &[u32]);
        assert_eq!(b.len(), 2);
        // Malformed flattenings are rejected.
        assert!(BandBuckets::from_raw_parts(vec![10], vec![0], vec![]).is_err());
        assert!(BandBuckets::from_raw_parts(vec![10], vec![0, 2], vec![1]).is_err());
        assert!(BandBuckets::from_raw_parts(vec![10, 10], vec![0, 1, 2], vec![1, 2]).is_err());
        assert!(BandBuckets::from_raw_parts(vec![20, 10], vec![0, 1, 2], vec![1, 2]).is_err());
        assert!(BandBuckets::from_raw_parts(vec![10], vec![1, 1], vec![1]).is_err());
    }

    #[test]
    fn from_parts_validates_shapes() {
        let collection = family_collection();
        let config = IndexConfig::default().with_signature_len(32);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        let rebuilt = SketchIndex::from_parts(
            *index.scheme(),
            *index.params(),
            index.signatures().to_vec(),
            index.set_sizes().to_vec(),
            index.names().to_vec(),
            (0..index.params().bands()).map(|b| index.band(b).clone()).collect(),
        )
        .unwrap();
        assert_eq!(rebuilt, index);
        // Wrong band count.
        assert!(SketchIndex::from_parts(
            *index.scheme(),
            *index.params(),
            index.signatures().to_vec(),
            index.set_sizes().to_vec(),
            index.names().to_vec(),
            vec![],
        )
        .is_err());
        // Mismatched metadata length.
        assert!(SketchIndex::from_parts(
            *index.scheme(),
            *index.params(),
            index.signatures().to_vec(),
            vec![],
            index.names().to_vec(),
            (0..index.params().bands()).map(|b| index.band(b).clone()).collect(),
        )
        .is_err());
    }
}
