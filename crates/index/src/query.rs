//! The batched top-k query engine.
//!
//! A query is a set of attribute values (k-mer codes). Serving it means:
//! sign the query with the index's [`SignatureScheme`], probe every LSH
//! band bucket for candidates, score the candidates by signature
//! agreement in parallel (rayon map + reduce over candidate chunks,
//! merging per-chunk top lists), and optionally re-rank the survivors
//! with *exact* Jaccard computed over the bit-packed popcount-AND path of
//! `gas_sparse` (Eq. 7 applied per candidate pair instead of as a full
//! `AᵀA`). Everything is deterministic: candidate sets are sorted, and
//! ties break toward the smaller sample id.

use gas_core::indicator::SampleCollection;
use gas_core::minhash::MinHashSignature;
use gas_sparse::bitmat::BitMatrix;
use rayon::prelude::*;

use crate::build::SketchIndex;
use crate::error::{IndexError, IndexResult};
use crate::lifecycle::IndexReader;
use crate::segment::Segment;

/// One answer of a top-k query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Sample id in the indexed collection.
    pub id: u32,
    /// Number of agreeing signature positions (0 for purely exact
    /// scoring, where no signatures were involved).
    pub agreement: u32,
    /// Similarity score: the MinHash estimate `agreement / len`, replaced
    /// by the exact Jaccard similarity after re-ranking.
    pub score: f64,
}

/// Options of one batched query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// Number of neighbors to return per query.
    pub top_k: usize,
    /// Keep `oversample × top_k` LSH candidates through the scoring
    /// stage; re-ranking then picks the final `top_k` from that pool.
    /// Absorbs estimator noise near the cut-off.
    pub oversample: usize,
    /// Re-rank the surviving candidates with exact Jaccard via the
    /// popcount-AND path (requires the engine to hold the collection).
    pub rerank_exact: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { top_k: 10, oversample: 3, rerank_exact: false }
    }
}

impl QueryOptions {
    /// Candidates kept through the LSH scoring stage.
    pub fn keep(&self) -> usize {
        self.top_k.saturating_mul(self.oversample.max(1)).max(self.top_k)
    }
}

/// An opaque pagination cursor: the snapshot generation the scan is
/// pinned to plus the rank offset of the next hit. Clients treat the
/// [`token`](Self::token) as an opaque string; the engine validates the
/// generation on every page, so a cursor can never silently mix the
/// rankings of two different snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCursor {
    generation: u64,
    offset: u64,
}

impl PageCursor {
    pub(crate) fn new(generation: u64, offset: u64) -> Self {
        PageCursor { generation, offset }
    }

    /// The snapshot generation this cursor is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The rank offset the next page starts at.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Serialize to an opaque wire token.
    pub fn token(&self) -> String {
        format!("{:x}.{:x}", self.generation, self.offset)
    }

    /// Parse a wire token produced by [`Self::token`].
    pub fn parse(token: &str) -> IndexResult<Self> {
        let bad = || IndexError::InvalidCursor(token.to_string());
        let (gen_hex, off_hex) = token.split_once('.').ok_or_else(bad)?;
        Ok(PageCursor {
            generation: u64::from_str_radix(gen_hex, 16).map_err(|_| bad())?,
            offset: u64::from_str_radix(off_hex, 16).map_err(|_| bad())?,
        })
    }
}

/// One page request of a paginated query scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRequest {
    /// Resume point (`None` starts the scan). The cursor's generation
    /// must match the snapshot being queried or the request fails with
    /// a typed [`IndexError::StaleCursor`].
    pub cursor: Option<PageCursor>,
    /// Hits per page (must be ≥ 1).
    pub page_size: usize,
    /// Drop hits scoring below this (applied to the exact score when
    /// re-ranking, the MinHash estimate otherwise).
    pub min_score: f64,
    /// Re-rank the full candidate ranking with exact Jaccard before
    /// paging (requires the engine to hold the collection). Applied to
    /// the *whole* ranking so page boundaries never change the order.
    pub rerank_exact: bool,
}

impl PageRequest {
    /// A first-page request with no score floor and no re-ranking.
    pub fn new(page_size: usize) -> Self {
        PageRequest { cursor: None, page_size, min_score: 0.0, rerank_exact: false }
    }

    /// Resume from a cursor returned in a previous [`QueryPage`].
    pub fn with_cursor(mut self, cursor: PageCursor) -> Self {
        self.cursor = Some(cursor);
        self
    }

    /// Set the score floor.
    pub fn with_min_score(mut self, min_score: f64) -> Self {
        self.min_score = min_score;
        self
    }

    /// Enable exact re-ranking of the full ranking.
    pub fn with_rerank(mut self, rerank_exact: bool) -> Self {
        self.rerank_exact = rerank_exact;
        self
    }
}

/// One page of a paginated query scan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPage {
    /// The hits of this page, in ranking order.
    pub hits: Vec<Neighbor>,
    /// Cursor of the next page (`None` when the scan is exhausted).
    pub next_cursor: Option<PageCursor>,
    /// Total LSH candidates the ranking was computed over (constant
    /// across the pages of one scan).
    pub total_candidates: usize,
}

/// Entries of the LSH scoring stage: `(agreement, id)` ordered by
/// agreement descending, then id ascending.
pub(crate) type Scored = (u32, u32);

/// The one ordering every ranking stage (local scoring, distributed
/// merge) must share for the single-rank and sharded paths to return
/// bit-identical answers.
#[inline]
pub(crate) fn scored_less(a: &Scored, b: &Scored) -> std::cmp::Ordering {
    b.0.cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Query values as the sorted, deduplicated set every scoring path
/// assumes: borrowed when already canonical, normalized otherwise.
pub(crate) fn normalized_query(values: &[u64]) -> std::borrow::Cow<'_, [u64]> {
    if values.windows(2).all(|w| w[0] < w[1]) {
        return std::borrow::Cow::Borrowed(values);
    }
    let mut owned = values.to_vec();
    owned.sort_unstable();
    owned.dedup();
    std::borrow::Cow::Owned(owned)
}

/// Merge two lists sorted by [`scored_less`], keeping the best `keep`.
fn merge_scored(a: Vec<Scored>, b: Vec<Scored>, keep: usize) -> Vec<Scored> {
    if a.is_empty() || b.is_empty() {
        let mut out = if a.is_empty() { b } else { a };
        out.truncate(keep);
        return out;
    }
    let mut out = Vec::with_capacity((a.len() + b.len()).min(keep));
    let (mut i, mut j) = (0usize, 0usize);
    while out.len() < keep && (i < a.len() || j < b.len()) {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => scored_less(x, y) != std::cmp::Ordering::Greater,
            (Some(_), None) => true,
            _ => false,
        };
        if take_a {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

/// Score `candidates` with `score_of` and keep the best `keep`, in
/// parallel over candidate chunks (rayon map + reduce). The scoring
/// callback abstracts where signature rows live: the local engine reads
/// them from the index, the distributed engine from its signature shard
/// plus the rows fetched for this batch.
pub(crate) fn lsh_top_by<F: Fn(u32) -> u32 + Sync>(
    score_of: &F,
    candidates: &[u32],
    keep: usize,
) -> Vec<Scored> {
    if candidates.is_empty() || keep == 0 {
        return Vec::new();
    }
    let chunk = 1024usize;
    candidates
        .par_chunks(chunk)
        .map(|ids| {
            let mut local: Vec<Scored> = ids.iter().map(|&id| (score_of(id), id)).collect();
            local.sort_unstable_by(scored_less);
            local.truncate(keep);
            local
        })
        .reduce(Vec::new, |a, b| merge_scored(a, b, keep))
}

/// Deterministic merge of scored candidates drawn from several sources
/// — the segments of a reader snapshot, or the per-rank partial lists
/// of a distributed round. A sample surfacing from more than one probed
/// bucket across sources is kept exactly once (duplicates are keyed by
/// sample id; should sources ever disagree on a sample's agreement,
/// which only a corrupt source can produce, the highest agreement
/// wins), and the final ordering is the engine-wide ranking order:
/// agreement descending, then sample id ascending — **score ties keep
/// the lowest sample id first**, so merged top-k output is stable no
/// matter how rows are spread over segments or ranks.
pub(crate) fn merge_scored_sources(mut entries: Vec<Scored>, keep: usize) -> Vec<Scored> {
    // Group duplicates by id (best agreement first within a group), then
    // restore the ranking order. Two passes keep the dedup correct even
    // for non-adjacent duplicates, which a single ranking sort followed
    // by `dedup_by_key` would miss if agreements disagreed.
    entries.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
    entries.dedup_by_key(|e| e.1);
    entries.sort_unstable_by(scored_less);
    entries.truncate(keep);
    entries
}

/// Record one segment probe in the planner's probe-heat counters: the
/// aggregate `gas_plan_segment_probes_total` / `_candidates_total` pair
/// plus their per-segment `..._seg<id>_total` variants. This is the
/// observed signal `gas-plan`'s placement planner ranks segments "hot"
/// by, bumped on every probe of both the local engine and the
/// distributed prober so serving and planning see the same heat.
pub(crate) fn record_probe_heat(segment_id: u64, candidates: usize) {
    gas_obs::counter("gas_plan_segment_probes_total").inc();
    gas_obs::counter("gas_plan_segment_candidates_total").add(candidates as u64);
    gas_obs::counter(&gas_obs::segment_counter_name("gas_plan_segment_probes", segment_id)).inc();
    gas_obs::counter(&gas_obs::segment_counter_name("gas_plan_segment_candidates", segment_id))
        .add(candidates as u64);
}

/// The candidate *local rows* of `seg` for a query signature, restricted
/// to bands `band_filter` admits and to rows whose global id is live
/// under `reader`'s tombstones. Shared by the local engine and the
/// distributed prober so both surface exactly the same candidates.
pub(crate) fn live_segment_candidates<F: Fn(usize) -> bool>(
    reader: &IndexReader,
    seg: &Segment,
    sig: &MinHashSignature,
    band_filter: F,
) -> Vec<u32> {
    seg.candidates_where(sig, band_filter)
        .into_iter()
        .filter(|&local| !reader.is_deleted(seg.global_id(local as usize)))
        .collect()
}

/// The live candidate local rows of **every** segment for **every**
/// query signature, indexed `[segment][query]` in the reader's segment
/// order: the all-segments-first probe of the keyed cross-segment
/// exchange, so the distributed path can batch every segment's row
/// requests into one collective round. Built from
/// [`live_segment_candidates`], so the candidate sets (and their order)
/// are exactly the single-rank engine's.
pub(crate) fn live_candidates_by_segment<F: Fn(usize) -> bool>(
    reader: &IndexReader,
    signatures: &[MinHashSignature],
    band_filter: F,
) -> Vec<Vec<Vec<u32>>> {
    reader
        .segments()
        .iter()
        .map(|seg| {
            signatures
                .iter()
                .map(|sig| {
                    let candidates = live_segment_candidates(reader, seg, sig, &band_filter);
                    record_probe_heat(seg.id(), candidates.len());
                    candidates
                })
                .collect()
        })
        .collect()
}

/// Score a query signature over every live segment of a reader snapshot
/// and keep the global best `keep`, as `(agreement, global id)` entries:
/// per segment, candidates are probed and scored over local rows (the
/// same parallel map + reduce as the monolithic path), then the
/// per-segment top lists are merged deterministically. The per-segment
/// truncation is lossless: an entry of the global top-`keep` necessarily
/// survives the top-`keep` of whichever segment holds it.
pub(crate) fn scored_over_reader(
    reader: &IndexReader,
    sig: &MinHashSignature,
    keep: usize,
) -> Vec<Scored> {
    let mut entries: Vec<Scored> = Vec::new();
    for seg in reader.segments() {
        let candidates = {
            let mut probe_span = gas_obs::span("serve", "probe");
            let candidates = live_segment_candidates(reader, seg, sig, |_| true);
            probe_span.annotate("candidates", candidates.len() as f64);
            record_probe_heat(seg.id(), candidates.len());
            candidates
        };
        let top = {
            let _score_span = gas_obs::span("serve", "score");
            lsh_top_by(
                &|local| seg.signature(local as usize).agreement(sig) as u32,
                &candidates,
                keep,
            )
        };
        entries.extend(top.into_iter().map(|(a, local)| (a, seg.global_id(local as usize))));
    }
    let _merge_span = gas_obs::span("serve", "merge");
    merge_scored_sources(entries, keep)
}

/// Exact Jaccard similarities between `query` and each of `ids`, through
/// the bit-packed popcount-AND kernel: the query and candidate sets are
/// remapped onto their value union (the same zero-row-elimination idea as
/// the paper's filter step), packed 64 rows per word, and intersected
/// with [`BitMatrix::and_popcount`].
pub fn exact_scores_popcount(
    collection: &SampleCollection,
    query: &[u64],
    ids: &[u32],
) -> IndexResult<Vec<f64>> {
    let query = &*normalized_query(query);
    for &id in ids {
        if id as usize >= collection.n() {
            return Err(IndexError::InvalidQuery(format!(
                "candidate id {id} out of range for {} samples",
                collection.n()
            )));
        }
    }
    let mut universe: Vec<u64> = query.to_vec();
    for &id in ids {
        universe.extend_from_slice(collection.sample(id as usize));
    }
    universe.sort_unstable();
    universe.dedup();
    let remap = |values: &[u64]| -> Vec<usize> {
        values
            .iter()
            .map(|v| universe.binary_search(v).expect("value drawn from the union"))
            .collect()
    };
    let mut columns = Vec::with_capacity(ids.len() + 1);
    columns.push(remap(query));
    for &id in ids {
        columns.push(remap(collection.sample(id as usize)));
    }
    let bm = BitMatrix::from_columns(universe.len().max(1), &columns)?;
    Ok(ids
        .iter()
        .enumerate()
        .map(|(j, &id)| {
            let inter = bm.and_popcount(0, j + 1);
            let union = query.len() as u64 + collection.sample(id as usize).len() as u64 - inter;
            if union == 0 {
                1.0 // Both empty: J = 1 by the pipeline's convention.
            } else {
                inter as f64 / union as f64
            }
        })
        .collect())
}

/// Turn scored LSH entries into final neighbors: optionally re-rank with
/// exact Jaccard, then truncate to `top_k`. Shared by the local and the
/// distributed query paths so both return bit-identical answers.
pub(crate) fn finalize(
    scored: Vec<Scored>,
    signature_len: usize,
    query: &[u64],
    collection: Option<&SampleCollection>,
    opts: &QueryOptions,
) -> IndexResult<Vec<Neighbor>> {
    let mut neighbors: Vec<Neighbor> = scored
        .into_iter()
        .map(|(agreement, id)| Neighbor {
            id,
            agreement,
            score: agreement as f64 / signature_len as f64,
        })
        .collect();
    if opts.rerank_exact {
        let _rerank_span = gas_obs::span("serve", "rerank");
        let collection = collection.ok_or_else(|| {
            IndexError::InvalidQuery(
                "exact re-ranking requires the engine to hold the sample collection".into(),
            )
        })?;
        let ids: Vec<u32> = neighbors.iter().map(|n| n.id).collect();
        let exact = exact_scores_popcount(collection, query, &ids)?;
        for (n, score) in neighbors.iter_mut().zip(exact) {
            n.score = score;
        }
        neighbors.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    }
    neighbors.truncate(opts.top_k);
    Ok(neighbors)
}

/// The batched top-k query engine over an [`IndexReader`] snapshot.
///
/// The engine serves whatever snapshot it was built from — one sealed
/// segment (the monolithic [`SketchIndex`] constructors) or a whole
/// segmented lifecycle snapshot with tombstones (the
/// [`for_reader`](Self::for_reader) constructors). Every query probes
/// *all* live segments, skips tombstoned rows, and merges the
/// per-segment top lists deterministically (see
/// [`merge_scored_sources`]): answers are bit-identical to a fresh
/// monolithic build over the snapshot's live corpus, modulo the global
/// ids the snapshot preserves.
#[derive(Debug, Clone)]
pub struct QueryEngine<'a> {
    reader: IndexReader,
    collection: Option<&'a SampleCollection>,
}

impl<'a> QueryEngine<'a> {
    /// An engine that scores with signatures only (no exact re-ranking).
    pub fn new(index: &SketchIndex) -> QueryEngine<'static> {
        QueryEngine { reader: index.as_reader(), collection: None }
    }

    /// An engine that can re-rank exactly against the original sets.
    pub fn with_collection(index: &SketchIndex, collection: &'a SampleCollection) -> Self {
        QueryEngine { reader: index.as_reader(), collection: Some(collection) }
    }

    /// An engine over a lifecycle snapshot (signatures only).
    #[deprecated(since = "0.7.0", note = "renamed to `QueryEngine::snapshot`")]
    pub fn for_reader(reader: IndexReader) -> QueryEngine<'static> {
        QueryEngine::snapshot(reader)
    }

    /// An engine over a lifecycle snapshot that can re-rank exactly.
    #[deprecated(since = "0.7.0", note = "renamed to `QueryEngine::snapshot_with_collection`")]
    pub fn for_reader_with_collection(
        reader: IndexReader,
        collection: &'a SampleCollection,
    ) -> Self {
        QueryEngine::snapshot_with_collection(reader, collection)
    }

    /// An engine over a lifecycle snapshot (signatures only) — the shape
    /// the serving frontend hands out: the snapshot stays pinned to its
    /// generation for the engine's lifetime.
    pub fn snapshot(reader: IndexReader) -> QueryEngine<'static> {
        QueryEngine { reader, collection: None }
    }

    /// An engine over a lifecycle snapshot that can re-rank exactly.
    /// `collection` must be indexed by *global* sample id (the corpus
    /// the writer assigned ids over; tombstoned entries are never
    /// touched).
    pub fn snapshot_with_collection(reader: IndexReader, collection: &'a SampleCollection) -> Self {
        QueryEngine { reader, collection: Some(collection) }
    }

    /// The snapshot this engine serves.
    pub fn reader(&self) -> &IndexReader {
        &self.reader
    }

    /// The one ranking path every public query shape goes through: keep
    /// the best `pool` LSH candidates, finalize under `opts` (optional
    /// exact re-rank, truncate to `opts.top_k`). Also reports how many
    /// candidates the pool was drawn from, which pagination surfaces as
    /// `total_candidates`.
    fn ranked_pool(
        &self,
        values: &[u64],
        pool: usize,
        opts: &QueryOptions,
    ) -> IndexResult<(Vec<Neighbor>, usize)> {
        let values = &*normalized_query(values);
        let sig = self.reader.scheme().sign(values);
        let scored = scored_over_reader(&self.reader, &sig, pool);
        let total = scored.len();
        let ranked = finalize(scored, self.reader.scheme().len(), values, self.collection, opts)?;
        Ok((ranked, total))
    }

    /// Answer one query. `values` is treated as a set: it need not be
    /// sorted or deduplicated (signing is order-insensitive, and the
    /// exact re-rank canonicalizes before intersecting). This is the
    /// single-page case of the paginated scan: the first `top_k` hits of
    /// the ranking over the oversampled candidate pool.
    pub fn query(&self, values: &[u64], opts: &QueryOptions) -> IndexResult<Vec<Neighbor>> {
        let _query_span = gas_obs::span("serve", "query");
        self.ranked_pool(values, opts.keep(), opts).map(|(hits, _)| hits)
    }

    /// Answer one page of a paginated scan over the **full** candidate
    /// ranking. Unlike [`Self::query`], no oversampling pool truncates
    /// the ranking: every LSH candidate is ranked (and optionally exact
    /// re-ranked) before the page is cut, so for any `page_size` the
    /// concatenated pages of one scan are exactly the one-shot ranking —
    /// pages tile, never overlap, never skip. The returned cursor pins
    /// the snapshot generation; resuming it against a different
    /// generation fails with a typed [`IndexError::StaleCursor`] rather
    /// than silently mixing two rankings.
    pub fn query_page(&self, values: &[u64], req: &PageRequest) -> IndexResult<QueryPage> {
        let _page_span = gas_obs::span("serve", "query_page");
        if req.page_size == 0 {
            return Err(IndexError::InvalidQuery("page_size must be ≥ 1".into()));
        }
        let offset = match req.cursor {
            Some(cursor) => {
                if cursor.generation() != self.reader.generation() {
                    return Err(IndexError::StaleCursor {
                        cursor_generation: cursor.generation(),
                        snapshot_generation: self.reader.generation(),
                    });
                }
                cursor.offset() as usize
            }
            None => 0,
        };
        let full =
            QueryOptions { top_k: usize::MAX, oversample: 1, rerank_exact: req.rerank_exact };
        let (ranked, total_candidates) = self.ranked_pool(values, usize::MAX, &full)?;
        let ranked: Vec<Neighbor> =
            ranked.into_iter().filter(|n| n.score >= req.min_score).collect();
        let start = offset.min(ranked.len());
        let end = offset.saturating_add(req.page_size).min(ranked.len());
        let next_cursor =
            (end < ranked.len()).then(|| PageCursor::new(self.reader.generation(), end as u64));
        Ok(QueryPage { hits: ranked[start..end].to_vec(), next_cursor, total_candidates })
    }

    /// [`Self::query_page`] over a batch of queries: one page per query,
    /// all at the same `req` offset (the scan cursor advances in lock
    /// step across the batch).
    pub fn query_page_batch(
        &self,
        queries: &[Vec<u64>],
        req: &PageRequest,
    ) -> IndexResult<Vec<QueryPage>> {
        queries.iter().map(|q| self.query_page(q, req)).collect()
    }

    /// Answer one query from a signature signed elsewhere (an ingress
    /// tier, a peer shard, a client library). `scheme` is the scheme the
    /// caller signed with; it must match the index's scheme exactly —
    /// signer kind, length and seed — or the call fails with a typed
    /// [`IndexError::SignerMismatch`] instead of silently scoring
    /// incomparable signatures. Exact re-ranking needs the raw query
    /// values, which a pre-signed call does not carry, so
    /// `opts.rerank_exact` is rejected here.
    pub fn query_presigned(
        &self,
        scheme: &gas_core::minhash::SignatureScheme,
        sig: &MinHashSignature,
        opts: &QueryOptions,
    ) -> IndexResult<Vec<Neighbor>> {
        self.reader.check_query_scheme(scheme)?;
        if opts.rerank_exact {
            return Err(IndexError::InvalidQuery(
                "exact re-ranking needs the raw query values; use `query` instead".into(),
            ));
        }
        if sig.len() != self.reader.scheme().len() {
            return Err(IndexError::InvalidQuery(format!(
                "pre-signed signature has {} positions, the index expects {}",
                sig.len(),
                self.reader.scheme().len()
            )));
        }
        let scored = scored_over_reader(&self.reader, sig, opts.keep());
        finalize(scored, self.reader.scheme().len(), &[], None, opts)
    }

    /// Answer a batch of queries. Each query's candidate scoring runs in
    /// parallel over candidate chunks; queries are processed in order so
    /// results line up with the input slice. This is the single-page
    /// case of [`Self::query_page_batch`]: the first `top_k` hits per
    /// query, ranked over the oversampled candidate pool.
    pub fn query_batch(
        &self,
        queries: &[Vec<u64>],
        opts: &QueryOptions,
    ) -> IndexResult<Vec<Vec<Neighbor>>> {
        queries.iter().map(|q| self.query(q, opts)).collect()
    }
}

/// Exact top-k by brute force over every sample (merge-join on the sorted
/// sets) — the ground truth the engine's recall is measured against, and
/// the "linear scan" baseline of the `query_throughput` experiment.
pub fn exact_top_k(collection: &SampleCollection, query: &[u64], top_k: usize) -> Vec<Neighbor> {
    let query = &*normalized_query(query);
    let mut scored: Vec<Neighbor> = (0..collection.n())
        .map(|id| {
            let sample = collection.sample(id);
            let inter = sorted_intersection_size(query, sample);
            let union = query.len() as u64 + sample.len() as u64 - inter;
            let score = if union == 0 { 1.0 } else { inter as f64 / union as f64 };
            Neighbor { id: id as u32, agreement: 0, score }
        })
        .collect();
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    scored.truncate(top_k);
    scored
}

/// Intersection cardinality of two sorted, deduplicated slices.
pub fn sorted_intersection_size(a: &[u64], b: &[u64]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexConfig;
    use crate::service::IndexOptions;

    fn workload() -> SampleCollection {
        // Three families of four samples; family cores overlap heavily.
        let mut samples = Vec::new();
        for f in 0..3u64 {
            let core: Vec<u64> = (f * 100_000..f * 100_000 + 600).collect();
            for m in 0..4u64 {
                let mut s = core.clone();
                s.extend(f * 100_000 + 50_000 + m * 40..f * 100_000 + 50_000 + m * 40 + 40);
                samples.push(s);
            }
        }
        SampleCollection::from_sets(samples).unwrap()
    }

    fn engine_fixture() -> (SampleCollection, SketchIndex) {
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(192).with_threshold(0.4);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        (collection, index)
    }

    #[test]
    fn self_query_returns_itself_first() {
        let (collection, index) = engine_fixture();
        let engine = QueryEngine::with_collection(&index, &collection);
        for id in 0..collection.n() {
            let opts = QueryOptions { top_k: 4, ..QueryOptions::default() };
            let got = engine.query(collection.sample(id), &opts).unwrap();
            assert_eq!(got[0].id, id as u32, "sample {id} not its own best match");
            assert!(got[0].score > 0.99);
            // The rest of the top-4 is the rest of the family.
            let family = (id / 4) * 4;
            for n in &got {
                assert!(
                    (family..family + 4).contains(&(n.id as usize)),
                    "sample {id} matched outside its family: {got:?}"
                );
            }
        }
    }

    #[test]
    fn estimates_and_exact_rerank_agree_on_ranking_quality() {
        let (collection, index) = engine_fixture();
        let query: Vec<u64> = collection.sample(5).iter().copied().step_by(2).collect();
        let exact = exact_top_k(&collection, &query, 4);

        let estimate_engine = QueryEngine::new(&index);
        let est = estimate_engine
            .query(&query, &QueryOptions { top_k: 4, ..Default::default() })
            .unwrap();
        assert_eq!(est[0].id, exact[0].id, "estimate misses the top-1");

        let rerank_engine = QueryEngine::with_collection(&index, &collection);
        let opts = QueryOptions { top_k: 4, rerank_exact: true, ..Default::default() };
        let rr = rerank_engine.query(&query, &opts).unwrap();
        for (got, want) in rr.iter().zip(&exact) {
            assert_eq!(got.id, want.id);
            assert!((got.score - want.score).abs() < 1e-12, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn presigned_queries_match_inline_signing_and_reject_mismatches() {
        use gas_core::minhash::SignerKind;
        let (collection, index) = engine_fixture();
        let engine = QueryEngine::new(&index);
        let opts = QueryOptions { top_k: 4, ..Default::default() };
        let values = collection.sample(5);
        let sig = index.scheme().sign(values);
        let presigned = engine.query_presigned(index.scheme(), &sig, &opts).unwrap();
        assert_eq!(presigned, engine.query(values, &opts).unwrap());

        // A signature from a different signer kind is rejected, typed.
        let other_scheme = index.scheme().with_kind(SignerKind::Oph);
        let other_sig = other_scheme.sign(values);
        assert!(matches!(
            engine.query_presigned(&other_scheme, &other_sig, &opts),
            Err(IndexError::SignerMismatch { .. })
        ));
        // Rerank needs raw values — rejected on the presigned path.
        let rr = QueryOptions { rerank_exact: true, ..opts };
        assert!(matches!(
            engine.query_presigned(index.scheme(), &sig, &rr),
            Err(IndexError::InvalidQuery(_))
        ));
        // A signature whose length disagrees with the scheme is rejected.
        let short = gas_core::minhash::MinHashSignature::from_values(vec![1, 2, 3]);
        assert!(matches!(
            engine.query_presigned(index.scheme(), &short, &opts),
            Err(IndexError::InvalidQuery(_))
        ));
    }

    #[test]
    fn rerank_without_collection_is_an_error() {
        let (_, index) = engine_fixture();
        let engine = QueryEngine::new(&index);
        let opts = QueryOptions { rerank_exact: true, ..Default::default() };
        assert!(matches!(engine.query(&[1, 2, 3], &opts), Err(IndexError::InvalidQuery(_))));
    }

    #[test]
    fn exact_scores_popcount_matches_merge_join() {
        let collection = workload();
        let query: Vec<u64> = collection.sample(0).iter().copied().take(400).collect();
        let ids: Vec<u32> = (0..collection.n() as u32).collect();
        let pop = exact_scores_popcount(&collection, &query, &ids).unwrap();
        for (&id, &score) in ids.iter().zip(&pop) {
            let sample = collection.sample(id as usize);
            let inter = sorted_intersection_size(&query, sample);
            let union = query.len() as u64 + sample.len() as u64 - inter;
            let want = inter as f64 / union as f64;
            assert!((score - want).abs() < 1e-12, "id {id}: {score} vs {want}");
        }
        // Out-of-range candidate ids are rejected.
        assert!(exact_scores_popcount(&collection, &query, &[999]).is_err());
    }

    #[test]
    fn batch_queries_line_up_with_inputs() {
        let (collection, index) = engine_fixture();
        let engine = QueryEngine::with_collection(&index, &collection);
        let queries: Vec<Vec<u64>> = (0..6).map(|i| collection.sample(i * 2).to_vec()).collect();
        let opts = QueryOptions { top_k: 3, rerank_exact: true, ..Default::default() };
        let batch = engine.query_batch(&queries, &opts).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (i, answers) in batch.iter().enumerate() {
            assert_eq!(answers[0].id, (i * 2) as u32);
            assert_eq!(answers, &engine.query(&queries[i], &opts).unwrap());
        }
    }

    #[test]
    fn pages_tile_the_full_ranking_for_any_page_size() {
        let (collection, index) = engine_fixture();
        let engine = QueryEngine::with_collection(&index, &collection);
        let query = collection.sample(5);
        for rerank in [false, true] {
            // One-shot reference: a single page larger than the corpus.
            let oneshot = engine
                .query_page(query, &PageRequest::new(collection.n() + 1).with_rerank(rerank))
                .unwrap();
            assert!(oneshot.next_cursor.is_none());
            for page_size in [1usize, 2, 3, 5, 7] {
                let mut walked = Vec::new();
                let mut req = PageRequest::new(page_size).with_rerank(rerank);
                loop {
                    let page = engine.query_page(query, &req).unwrap();
                    assert!(page.hits.len() <= page_size);
                    assert_eq!(page.total_candidates, oneshot.total_candidates);
                    walked.extend(page.hits);
                    match page.next_cursor {
                        Some(cursor) => {
                            // Cursor round-trips through its wire token.
                            let token = cursor.token();
                            req = req.with_cursor(PageCursor::parse(&token).unwrap());
                        }
                        None => break,
                    }
                }
                assert_eq!(walked, oneshot.hits, "page_size={page_size} rerank={rerank}");
            }
        }
    }

    #[test]
    fn page_min_score_filters_before_paging() {
        let (collection, index) = engine_fixture();
        let engine = QueryEngine::new(&index);
        let query = collection.sample(0);
        let all = engine.query_page(query, &PageRequest::new(64)).unwrap();
        let floor = all.hits[all.hits.len() / 2].score;
        let filtered =
            engine.query_page(query, &PageRequest::new(64).with_min_score(floor)).unwrap();
        let want: Vec<Neighbor> = all.hits.iter().copied().filter(|n| n.score >= floor).collect();
        assert_eq!(filtered.hits, want);
        assert!(filtered.hits.len() < all.hits.len());
    }

    #[test]
    fn stale_and_malformed_cursors_are_typed_errors() {
        let (collection, index) = engine_fixture();
        let engine = QueryEngine::new(&index);
        let query = collection.sample(0);
        // The monolithic snapshot is generation 0; a cursor minted at a
        // later generation must be refused.
        let stale = PageRequest::new(4).with_cursor(PageCursor::new(7, 0));
        assert!(matches!(
            engine.query_page(query, &stale),
            Err(IndexError::StaleCursor { cursor_generation: 7, snapshot_generation: 0 })
        ));
        assert!(matches!(PageCursor::parse("gibberish"), Err(IndexError::InvalidCursor(_))));
        assert!(matches!(PageCursor::parse("12"), Err(IndexError::InvalidCursor(_))));
        // A zero-size page can never make progress: rejected.
        assert!(matches!(
            engine.query_page(query, &PageRequest::new(0)),
            Err(IndexError::InvalidQuery(_))
        ));
    }

    #[test]
    fn empty_queries_and_empty_results_behave() {
        let (collection, index) = engine_fixture();
        let engine = QueryEngine::with_collection(&index, &collection);
        // An empty query collides with no indexed sample (none is empty).
        let got = engine.query(&[], &QueryOptions::default()).unwrap();
        assert!(got.is_empty());
        // top_k = 0 returns nothing.
        let got = engine
            .query(collection.sample(0), &QueryOptions { top_k: 0, ..Default::default() })
            .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn unsorted_and_duplicated_queries_are_canonicalized() {
        // Public entry points treat the query as a set: shuffled or
        // duplicated values must produce exactly the answers of the
        // sorted, deduplicated query — including through the exact
        // popcount re-rank, which would otherwise reject non-increasing
        // columns or inflate the union term.
        let (collection, index) = engine_fixture();
        let engine = QueryEngine::with_collection(&index, &collection);
        let clean: Vec<u64> = collection.sample(7).to_vec();
        let mut messy: Vec<u64> = clean.iter().rev().copied().collect();
        messy.extend_from_slice(&clean[..clean.len() / 3]); // duplicates
        for rerank in [false, true] {
            let opts = QueryOptions { top_k: 4, rerank_exact: rerank, ..Default::default() };
            assert_eq!(
                engine.query(&messy, &opts).unwrap(),
                engine.query(&clean, &opts).unwrap(),
                "rerank={rerank}"
            );
        }
        assert_eq!(exact_top_k(&collection, &messy, 3), exact_top_k(&collection, &clean, 3));
        let ids = [0u32, 7];
        assert_eq!(
            exact_scores_popcount(&collection, &messy, &ids).unwrap(),
            exact_scores_popcount(&collection, &clean, &ids).unwrap()
        );
    }

    #[test]
    fn merge_scored_sources_dedups_and_breaks_ties_by_lowest_id() {
        // Duplicates across sources (segments, ranks) collapse to one
        // entry per id even when non-adjacent; on agreement ties the
        // lower sample id ranks first; a duplicated id whose sources
        // disagree keeps the highest agreement.
        let entries = vec![(5, 9), (7, 3), (5, 2), (7, 3), (6, 9), (5, 4)];
        let merged = merge_scored_sources(entries, 10);
        assert_eq!(merged, vec![(7, 3), (6, 9), (5, 2), (5, 4)]);
        let truncated = merge_scored_sources(vec![(1, 1), (1, 0), (2, 5)], 2);
        assert_eq!(truncated, vec![(2, 5), (1, 0)]);
        assert!(merge_scored_sources(Vec::new(), 4).is_empty());
    }

    #[test]
    fn merge_scored_keeps_order_and_cap() {
        let a = vec![(9, 1), (5, 0), (5, 2)];
        let b = vec![(9, 0), (7, 5), (5, 1)];
        let m = merge_scored(a.clone(), b.clone(), 4);
        assert_eq!(m, vec![(9, 0), (9, 1), (7, 5), (5, 0)]);
        assert_eq!(merge_scored(a.clone(), Vec::new(), 2), a[..2].to_vec());
        assert_eq!(merge_scored(Vec::new(), b.clone(), 2), b[..2].to_vec());
    }

    #[test]
    fn sorted_intersection_size_basics() {
        assert_eq!(sorted_intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(sorted_intersection_size(&[], &[1]), 0);
        assert_eq!(sorted_intersection_size(&[5], &[5]), 1);
    }
}
