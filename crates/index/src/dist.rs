//! Distributed query serving: LSH bucket shards *and* signature shards
//! across simulated ranks, applied to every segment of a lifecycle
//! snapshot at once (a monolithic `SketchIndex` is served as the
//! one-segment special case).
//!
//! Two orthogonal shardings keep per-rank state at `~1/p` of the index:
//!
//! * **bands** are assigned to ranks round-robin ([`band_shard`]), so
//!   each rank probes `⌈b / p⌉` or `⌊b / p⌋` bucket tables of every
//!   segment;
//! * **signature rows** are assigned to ranks round-robin by local row
//!   ([`sample_shard`]), per segment, so each rank *stores* `~rows/p`
//!   of every segment's signature matrix ([`SignatureShard`], grouped
//!   per snapshot by [`ReaderShards`]) instead of replicating all
//!   `n · len · 8` bytes — the dominant memory term of a sketch index.
//!
//! One batched query round is a **constant number of collectives, no
//! matter how many segments the snapshot holds** — the
//! communication-avoidance discipline of the paper applied to the
//! serving path. Rows are addressed across segments by a single key,
//! `(seg_idx << 32) | local_row` ([`row_key`]), so all segments share
//! one request/fetch pair:
//!
//! 1. **scatter** — rank 0 signs the query batch and broadcasts the
//!    signatures (every query must visit every band, so the "scatter by
//!    band hash" degenerates to a broadcast of signatures while the
//!    *buckets* stay sharded; raw query values travel only when exact
//!    re-ranking is requested);
//! 2. **probe** — each rank probes its band shard of *every* segment
//!    (no communication), which yields the keyed candidate rows its
//!    scoring pass will touch;
//! 3. **request** — ranks allgather the keyed rows they need but do not
//!    own (deduplicated across segments *and* queries), so every owner
//!    learns which of its rows are wanted this round;
//! 4. **fetch** — each owner contributes each requested row *once* to
//!    an allgather, tagged with its key; every rank demultiplexes the
//!    delivery by key and keeps only the rows it asked for; scoring
//!    then reads rows from the local shard or the fetched set — never
//!    from a replicated matrix;
//! 5. **allgather + merge** — the per-rank partial top lists (already
//!    merged across segments locally) are allgathered, deduplicated by
//!    sample id and merged; every rank then finalizes (optional exact
//!    re-rank, truncate to `k`) identically.
//!
//! That is five collectives per batch (six with exact re-ranking) —
//! [`DistQueryStats::collective_calls`] observes the invariant, the
//! per-phase byte counters ([`DistQueryStats::wire_bytes`]) account for
//! every wire byte exactly, and the `query_throughput` bench sweeps
//! segment counts to pin the constant. The pre-keyed exchange, which
//! ran the request/fetch pair once per segment (O(#segments)
//! collectives), is retained as
//! [`dist_query_reader_batch_stats_per_segment`] — the reference the
//! equivalence proptests and the bench sweep compare against.
//!
//! A candidate surviving to the global top-k necessarily survives the
//! local top list of whichever rank found it, and every scored row is
//! byte-identical to the single-rank engine's, so the merged answer is
//! bit-identical to the single-rank engine's — the `query_serving`
//! integration suite pins that for the dist-matrix grid.

use gas_core::indicator::SampleCollection;
use gas_core::minhash::{signature_agreement, MinHashSignature};
use gas_dstsim::comm::Communicator;
use serde::{Deserialize, Serialize};

use crate::build::SketchIndex;
use crate::error::{IndexError, IndexResult};
use crate::lifecycle::IndexReader;
use crate::query::{
    finalize, live_candidates_by_segment, lsh_top_by, merge_scored_sources, Neighbor, PageCursor,
    PageRequest, QueryOptions, QueryPage, Scored,
};
use crate::segment::Segment;

/// The rank owning `band`'s bucket shard in a world of `nranks`:
/// round-robin over the band index. Band *keys* are already uniform
/// splitmix hashes, so round-robin assignment of whole bands is hash
/// sharding with a perfectly balanced placement — and, unlike hashing
/// the band index, it guarantees no rank is left without buckets
/// whenever `bands ≥ nranks` (true for every CI grid: indexes default
/// to ≥ 16 bands, the dist-matrix tops out at 12 ranks).
pub fn band_shard(band: usize, nranks: usize) -> usize {
    band % nranks
}

/// The rank owning sample `id`'s signature row: round-robin over the
/// sample id, so every rank stores `⌈n / p⌉` or `⌊n / p⌋` rows and
/// consecutive ids (which family-structured datasets cluster) spread
/// across ranks instead of hot-spotting one.
pub fn sample_shard(id: usize, nranks: usize) -> usize {
    id % nranks
}

/// Address a signature row across every segment of a snapshot with one
/// 64-bit key: the segment's position in the reader's segment list in
/// the high half, the local row in the low half. Keys from different
/// segments never collide, so one deduplicated request list (and one
/// row-fetch payload) can cover the whole snapshot.
pub fn row_key(seg_idx: usize, local: u32) -> u64 {
    debug_assert!(seg_idx <= u32::MAX as usize, "segment index exceeds the key's high half");
    (seg_idx as u64) << 32 | local as u64
}

/// Split a [`row_key`] back into `(segment index, local row)`.
pub fn split_row_key(key: u64) -> (usize, u32) {
    ((key >> 32) as usize, key as u32)
}

/// One rank's slice of a *segment's* signature matrix: the rows of the
/// local rows it owns under [`sample_shard`], flattened `len` words per
/// row in ascending local-row order. Sharding is per segment — every
/// sealed segment's rows spread round-robin over all ranks
/// independently, so the balance property holds for each segment (and
/// therefore for their union) no matter how commits and compactions
/// sliced the corpus. For a single-segment index local rows *are* the
/// sample ids, which is exactly the pre-lifecycle behavior.
///
/// In the simulator every rank could reach the whole index by reference;
/// materializing the shard keeps the memory accounting honest (a real
/// deployment loads only its shard from the container) and forces the
/// scoring path through the shard-or-fetched lookup that a real
/// deployment would use.
#[derive(Debug, Clone)]
pub struct SignatureShard {
    rank: usize,
    nranks: usize,
    len: usize,
    rows: Vec<u64>,
}

impl SignatureShard {
    /// Extract rank `rank`'s shard of `index`'s signature matrix (the
    /// single-segment convenience form of [`Self::for_segment`]).
    pub fn build(index: &SketchIndex, rank: usize, nranks: usize) -> Self {
        SignatureShard::for_segment(index.segment(), rank, nranks)
    }

    /// Extract rank `rank`'s shard of one sealed segment's signature
    /// matrix.
    pub fn for_segment(segment: &Segment, rank: usize, nranks: usize) -> Self {
        let len = segment.scheme().len();
        let n = segment.n_rows();
        let mut rows = Vec::with_capacity(n.div_ceil(nranks.max(1)) * len);
        let mut local = rank;
        while let Some(row) = segment.signature_words(local) {
            rows.extend_from_slice(row);
            local += nranks;
        }
        SignatureShard { rank, nranks, len, rows }
    }

    /// Whether this shard owns local row `id`.
    pub fn owns(&self, id: u32) -> bool {
        sample_shard(id as usize, self.nranks) == self.rank
    }

    /// The signature row of owned local row `id`.
    ///
    /// Panics if the shard does not own `id` (callers route non-owned
    /// rows through the fetched-row set).
    pub fn row(&self, id: u32) -> &[u64] {
        assert!(self.owns(id), "rank {} does not own row {id}", self.rank);
        let slot = (id as usize - self.rank) / self.nranks;
        &self.rows[slot * self.len..(slot + 1) * self.len]
    }

    /// Number of signature rows stored by this shard.
    pub fn n_rows(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        self.rows.len() / self.len
    }

    /// Bytes of signature data stored by this shard.
    pub fn bytes(&self) -> usize {
        self.rows.len() * 8
    }
}

/// One rank's signature shards of *every* segment of a reader snapshot,
/// resolving rows by [`row_key`]: the segment-indexed lookup path of the
/// keyed cross-segment exchange.
#[derive(Debug, Clone)]
pub struct ReaderShards {
    shards: Vec<SignatureShard>,
    seg_rows: Vec<usize>,
    len: usize,
}

impl ReaderShards {
    /// Extract rank `rank`'s shard of every segment of `reader`.
    pub fn build(reader: &IndexReader, rank: usize, nranks: usize) -> Self {
        let shards: Vec<SignatureShard> = reader
            .segments()
            .iter()
            .map(|seg| SignatureShard::for_segment(seg, rank, nranks))
            .collect();
        let seg_rows = reader.segments().iter().map(|seg| seg.n_rows()).collect();
        ReaderShards { shards, seg_rows, len: reader.scheme().len() }
    }

    /// The shard of segment `seg_idx` (the reader's segment order).
    pub fn segment(&self, seg_idx: usize) -> &SignatureShard {
        &self.shards[seg_idx]
    }

    /// Number of segments sharded.
    pub fn n_segments(&self) -> usize {
        self.shards.len()
    }

    /// Whether this rank owns keyed row `key`, with the key validated
    /// against the snapshot's segment layout — requests arrive over the
    /// wire, so an out-of-range key is a typed corruption error, never
    /// a panic.
    pub fn owns_key(&self, key: u64) -> IndexResult<bool> {
        let (seg_idx, local) = split_row_key(key);
        let rows = *self.seg_rows.get(seg_idx).ok_or_else(|| IndexError::Corrupt {
            context: format!(
                "requested row key {key:#x} addresses segment {seg_idx} of {}",
                self.seg_rows.len()
            ),
        })?;
        if local as usize >= rows {
            return Err(IndexError::Corrupt {
                context: format!(
                    "requested row key {key:#x} addresses row {local} of a {rows}-row segment"
                ),
            });
        }
        Ok(self.shards[seg_idx].owns(local))
    }

    /// The signature row of owned keyed row `key` (panics when this
    /// rank does not own it — callers validate with
    /// [`Self::owns_key`] first).
    pub fn row(&self, key: u64) -> &[u64] {
        let (seg_idx, local) = split_row_key(key);
        self.shards[seg_idx].row(local)
    }

    /// Total signature rows stored across all segment shards.
    pub fn n_rows(&self) -> usize {
        self.shards.iter().map(SignatureShard::n_rows).sum()
    }

    /// Total bytes of signature data stored across all segment shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(SignatureShard::bytes).sum()
    }
}

/// Per-segment slice of one sharded query round, per rank: how many of
/// the segment's rows this rank stored, probed, resolved locally and
/// fetched — the breakdown that makes the one-exchange batching
/// observable segment by segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentExchangeStats {
    /// The sealed segment's id.
    pub segment_id: u64,
    /// Signature rows of this segment stored by this rank's shard.
    pub shard_rows: usize,
    /// Distinct live candidate rows this rank's band probes surfaced.
    pub candidate_rows: usize,
    /// Of those, rows resolved from the local shard.
    pub owned_rows: usize,
    /// Of those, rows resolved from the fetched set.
    pub fetched_rows: usize,
}

/// Memory and traffic accounting of one sharded query round, per rank.
///
/// The four `*_bytes` phase counters record the bytes this rank
/// **received over the wire** in each phase, exactly: broadcasts
/// deliver their payload to every non-root rank once (binomial tree),
/// and an allgatherv's ring delivers every *foreign* block exactly once
/// (a rank's own contribution never travels to itself). Their sum,
/// [`Self::wire_bytes`], equals the simulator's per-rank
/// `CostReport::bytes_received` for the batch — pinned by a unit test,
/// so the bench's byte columns are trustworthy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistQueryStats {
    /// Signature rows this rank stores (its shards, summed over
    /// segments).
    pub shard_rows: usize,
    /// Bytes of signature data this rank stores.
    pub shard_bytes: usize,
    /// Distinct non-owned rows this rank's probes needed this round,
    /// summed over segments (each fetched once, keyed).
    pub fetched_rows: usize,
    /// Bytes of those fetched rows (transient working set, freed after
    /// the batch).
    pub fetched_bytes: usize,
    /// What replicating the whole signature matrix on this rank would
    /// cost — the pre-sharding baseline the shard is measured against.
    pub replicated_bytes: usize,
    /// Collectives this rank participated in for the batch — constant
    /// (5, or 6 with exact re-ranking) on the keyed path regardless of
    /// segment count; `2 · segments` higher on the per-segment
    /// reference path.
    pub collective_calls: usize,
    /// Wire bytes received in the query broadcasts (validity flag,
    /// signatures, raw values when re-ranking).
    pub bcast_bytes: usize,
    /// Wire bytes received in the keyed row-request allgather.
    pub request_bytes: usize,
    /// Wire bytes received in the keyed row-fetch allgather — the
    /// allgather fans every owner's contribution out to all ranks, and
    /// this counter records that full delivery (≥ the kept
    /// `fetched_bytes`), so the transient receive buffer is never
    /// understated.
    pub fetch_bytes: usize,
    /// Wire bytes received in the partial-top-list allgather.
    pub merge_bytes: usize,
    /// Order-insensitive fingerprint of the fetched row *content*
    /// (key + row words per fetched row): two exchanges that ship the
    /// same rows to this rank agree here even if their wire framing
    /// differs — how the keyed-equals-per-segment property is pinned.
    pub fetched_fingerprint: u64,
    /// Per-segment breakdown of storage and row resolution, in the
    /// reader's segment order.
    pub per_segment: Vec<SegmentExchangeStats>,
}

impl DistQueryStats {
    /// Total wire bytes this rank received for the batch — the sum of
    /// the four phase counters, equal to the simulator's per-rank
    /// `bytes_received` for the round.
    pub fn wire_bytes(&self) -> usize {
        self.bcast_bytes + self.request_bytes + self.fetch_bytes + self.merge_bytes
    }
}

/// Encode per-query partial top lists as a flat `u64` stream:
/// `[len, (id << 32 | agreement), ...]` per query, in query order.
fn encode_partials(partials: &[Vec<(u32, u32)>]) -> Vec<u64> {
    let mut out = Vec::with_capacity(partials.iter().map(|p| p.len() + 1).sum());
    for per_query in partials {
        out.push(per_query.len() as u64);
        for &(agreement, id) in per_query {
            out.push((id as u64) << 32 | agreement as u64);
        }
    }
    out
}

/// Decode one rank's stream back into per-query `(agreement, id)` lists.
fn decode_partials(stream: &[u64], nqueries: usize) -> IndexResult<Vec<Vec<(u32, u32)>>> {
    let mut out = Vec::with_capacity(nqueries);
    let mut pos = 0usize;
    for q in 0..nqueries {
        let len = *stream.get(pos).ok_or_else(|| IndexError::Corrupt {
            context: format!("partial top-k stream ends before query {q}"),
        })? as usize;
        pos += 1;
        if pos + len > stream.len() {
            return Err(IndexError::Corrupt {
                context: format!("partial top-k stream truncated inside query {q}"),
            });
        }
        out.push(
            stream[pos..pos + len]
                .iter()
                .map(|&w| ((w & 0xFFFF_FFFF) as u32, (w >> 32) as u32))
                .collect(),
        );
        pos += len;
    }
    if pos != stream.len() {
        return Err(IndexError::Corrupt {
            context: format!("{} trailing words in partial top-k stream", stream.len() - pos),
        });
    }
    Ok(out)
}

/// The words of an allgatherv result that actually crossed the wire
/// into rank `me`: every block except its own (the ring forwards each
/// foreign block to each rank exactly once; the local block never
/// leaves the rank).
fn foreign_words(blocks: &[Vec<u64>], me: usize) -> usize {
    blocks.iter().enumerate().filter(|&(r, _)| r != me).map(|(_, b)| b.len()).sum()
}

/// FNV-1a over a little-endian word stream — the per-row ingredient of
/// the order-insensitive fetched-content fingerprint.
fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The signature rows fetched from remote shards for one batch: sorted,
/// deduplicated [`row_key`]s parallel to `len`-word rows in one flat
/// buffer — all segments demultiplex from this single set.
struct KeyedRows {
    keys: Vec<u64>,
    rows: Vec<u64>,
    len: usize,
}

impl KeyedRows {
    fn row(&self, key: u64) -> Option<&[u64]> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|slot| &self.rows[slot * self.len..(slot + 1) * self.len])
    }

    fn n_rows(&self) -> usize {
        self.keys.len()
    }

    fn data_bytes(&self) -> usize {
        self.rows.len() * 8
    }

    /// Order-insensitive fingerprint of the kept row content: the
    /// wrapping sum of each row's keyed FNV-1a hash, so two exchanges
    /// shipping the same rows (in any order, under any framing) agree.
    fn fingerprint(&self) -> u64 {
        self.keys
            .iter()
            .enumerate()
            .map(|(slot, &key)| {
                let row = &self.rows[slot * self.len..(slot + 1) * self.len];
                fnv1a_words(std::iter::once(key).chain(row.iter().copied()))
            })
            .fold(0u64, u64::wrapping_add)
    }
}

/// What the query broadcasts deliver to every rank: the signed batch,
/// plus the raw query values when exact re-ranking needs them.
type BroadcastBatch = (Vec<MinHashSignature>, Option<Vec<Vec<u64>>>);

/// Phase 1 of a distributed batch: rank 0 validates and signs the query
/// batch, then broadcasts signatures (and raw values when exact
/// re-ranking needs them). The validity flag is broadcast *first* so
/// that a misuse on the ingress rank (no query batch) surfaces as a
/// typed error on every rank instead of leaving the other ranks blocked
/// in a bcast that never comes. Two or three collectives, counted and
/// byte-accounted into `stats`.
fn broadcast_query_batch(
    world: &Communicator,
    reader: &IndexReader,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
    stats: &mut DistQueryStats,
) -> IndexResult<BroadcastBatch> {
    let me = world.rank();
    let root_ok = world.bcast(0, if me == 0 { Some(queries.is_some() as u8) } else { None })?;
    stats.collective_calls += 1;
    if me != 0 {
        stats.bcast_bytes += 1;
    }
    if root_ok == 0 {
        return Err(IndexError::InvalidQuery("rank 0 must provide the query batch".into()));
    }
    let signed: Option<Vec<Vec<u64>>> = if me == 0 {
        let queries = queries.expect("flag checked above");
        Some(queries.iter().map(|q| reader.scheme().sign(q).values().to_vec()).collect())
    } else {
        None
    };
    let signed_values: Vec<Vec<u64>> = world.bcast(0, signed)?;
    stats.collective_calls += 1;
    if me != 0 {
        stats.bcast_bytes += signed_values.iter().map(|s| s.len() * 8).sum::<usize>();
    }
    let signatures: Vec<MinHashSignature> =
        signed_values.into_iter().map(MinHashSignature::from_values).collect();
    let raw_queries: Option<Vec<Vec<u64>>> = if opts.rerank_exact {
        let mine = if me == 0 { Some(queries.expect("flag checked above").to_vec()) } else { None };
        let raw = world.bcast(0, mine)?;
        stats.collective_calls += 1;
        if me != 0 {
            stats.bcast_bytes += raw.iter().map(|q| q.len() * 8).sum::<usize>();
        }
        Some(raw)
    } else {
        None
    };
    Ok((signatures, raw_queries))
}

/// Exchange keyed signature rows so this rank can score every candidate
/// its band shards surfaced, across **all** segments at once: one
/// allgather of the deduplicated keyed request lists, then one
/// allgather of each owner's requested rows (`[key, row...]` framing).
/// Each owner *contributes* each requested row once, but the allgather
/// delivers every contribution to all ranks —
/// [`DistQueryStats::fetch_bytes`] records that fan-out exactly.
fn exchange_keyed_rows(
    world: &Communicator,
    shards: &ReaderShards,
    wanted: &[u64],
    stats: &mut DistQueryStats,
) -> IndexResult<KeyedRows> {
    let me = world.rank();
    let len = shards.len;
    let all_requests: Vec<Vec<u64>> = world.allgatherv(wanted)?;
    stats.collective_calls += 1;
    stats.request_bytes += foreign_words(&all_requests, me) * 8;

    // Rows this rank must ship: the union of everyone's requests that it
    // owns, deduplicated so a row wanted by several ranks (or several
    // queries, or via several segments' probes) is still shipped exactly
    // once. Keys are validated here — they arrived over the wire.
    let mut to_ship: Vec<u64> = Vec::new();
    for &key in all_requests.iter().flatten() {
        if shards.owns_key(key)? {
            to_ship.push(key);
        }
    }
    to_ship.sort_unstable();
    to_ship.dedup();

    let mut payload = Vec::with_capacity(to_ship.len() * (len + 1));
    for &key in &to_ship {
        payload.push(key);
        payload.extend_from_slice(shards.row(key));
    }
    let shipped: Vec<Vec<u64>> = world.allgatherv(&payload)?;
    stats.collective_calls += 1;
    stats.fetch_bytes += foreign_words(&shipped, me) * 8;

    // Demultiplex by key, keeping only the rows this rank asked for
    // (the allgather also delivers rows other ranks requested); row
    // ownership is unique, so keys across streams never collide.
    let mut fetched: Vec<(u64, usize, usize)> = Vec::with_capacity(wanted.len());
    for (rank, stream) in shipped.iter().enumerate() {
        if stream.len() % (len + 1) != 0 {
            return Err(IndexError::Corrupt {
                context: format!(
                    "signature-row stream from rank {rank} is {} words, not a multiple of {}",
                    stream.len(),
                    len + 1
                ),
            });
        }
        for slot in 0..stream.len() / (len + 1) {
            let base = slot * (len + 1);
            let key = stream[base];
            shards.owns_key(key)?; // range validation; ownership is the shipper's
            if wanted.binary_search(&key).is_ok() {
                fetched.push((key, rank, base + 1));
            }
        }
    }
    fetched.sort_unstable_by_key(|&(key, _, _)| key);
    let mut keys = Vec::with_capacity(fetched.len());
    let mut rows = Vec::with_capacity(fetched.len() * len);
    for (key, rank, start) in fetched {
        keys.push(key);
        rows.extend_from_slice(&shipped[rank][start..start + len]);
    }
    let out = KeyedRows { keys, rows, len };
    // Every row this rank requested must have arrived (its unique owner
    // shipped it); a hole means the shard map diverged across ranks.
    if let Some(&missing) = wanted.iter().find(|&&key| out.row(key).is_none()) {
        return Err(IndexError::Corrupt {
            context: format!("owner never shipped requested signature row key {missing:#x}"),
        });
    }
    Ok(out)
}

/// One segment's scoring context: its position in the reader's segment
/// order, the sealed segment, and this rank's shard of it.
struct SegmentView<'a> {
    idx: usize,
    seg: &'a Segment,
    shard: &'a SignatureShard,
}

/// Score one segment's candidates for every query and extend the
/// per-query entry lists with `(agreement, global id)` — rows resolve
/// from the segment's shard or the keyed fetched set, and the scoring
/// order (parallel map + reduce per query) is the monolithic engine's,
/// so answers stay bit-identical.
fn score_segment(
    view: &SegmentView<'_>,
    fetched: &KeyedRows,
    signatures: &[MinHashSignature],
    per_query_candidates: &[Vec<u32>],
    keep: usize,
    per_query_entries: &mut [Vec<Scored>],
) {
    for (q, (sig, candidates)) in signatures.iter().zip(per_query_candidates).enumerate() {
        let score_of = |local: u32| -> u32 {
            let row = if view.shard.owns(local) {
                view.shard.row(local)
            } else {
                fetched.row(row_key(view.idx, local)).expect("validated by exchange_keyed_rows")
            };
            signature_agreement(sig.values(), row) as u32
        };
        per_query_entries[q].extend(
            lsh_top_by(&score_of, candidates, keep)
                .into_iter()
                .map(|(a, local)| (a, view.seg.global_id(local as usize))),
        );
    }
}

/// The per-segment resolution breakdown of one round, from the probes'
/// candidate lists: distinct candidate rows, split into shard-resolved
/// and fetch-resolved.
fn segment_exchange_stats(
    seg: &Segment,
    shard: &SignatureShard,
    per_query_candidates: &[Vec<u32>],
) -> SegmentExchangeStats {
    let mut distinct: Vec<u32> = per_query_candidates.iter().flatten().copied().collect();
    distinct.sort_unstable();
    distinct.dedup();
    let owned = distinct.iter().filter(|&&local| shard.owns(local)).count();
    SegmentExchangeStats {
        segment_id: seg.id(),
        shard_rows: shard.n_rows(),
        candidate_rows: distinct.len(),
        owned_rows: owned,
        fetched_rows: distinct.len() - owned,
    }
}

/// Phase 5 of a distributed batch: allgather the partial top lists and
/// merge with the same deterministic rule the local engine uses — one
/// entry per sample id (a candidate can surface on several ranks, one
/// per colliding band), ties ordered by lowest id — then finalize
/// identically on every rank.
fn merge_partials_and_finalize(
    world: &Communicator,
    partials: Vec<Vec<Scored>>,
    raw_queries: &Option<Vec<Vec<u64>>>,
    collection: Option<&SampleCollection>,
    opts: &QueryOptions,
    len: usize,
    stats: &mut DistQueryStats,
) -> IndexResult<Vec<Vec<Neighbor>>> {
    let me = world.rank();
    let nqueries = partials.len();
    let keep = opts.keep();
    let streams: Vec<Vec<u64>> = world.allgatherv(&encode_partials(&partials))?;
    stats.collective_calls += 1;
    stats.merge_bytes += foreign_words(&streams, me) * 8;
    let mut merged: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nqueries];
    for stream in &streams {
        for (q, partial) in decode_partials(stream, nqueries)?.into_iter().enumerate() {
            merged[q].extend(partial);
        }
    }
    let mut answers = Vec::with_capacity(nqueries);
    for (q, entries) in merged.into_iter().enumerate() {
        let entries = merge_scored_sources(entries, keep);
        let query_values: &[u64] = match raw_queries {
            Some(qs) => &qs[q],
            None => &[],
        };
        answers.push(finalize(entries, len, query_values, collection, opts)?);
    }
    Ok(answers)
}

/// Serve a batch of top-k queries over a lifecycle snapshot, band- and
/// signature-sharded across the ranks of `world`, returning each rank's
/// answers plus its sharding stats.
///
/// Sharding is **per segment** (every sealed segment's bands and
/// signature rows distribute round-robin independently, so each rank
/// holds `~rows/p` of every segment), but the exchange is **one keyed
/// round for the whole snapshot**: every rank probes its band shard of
/// all segments first, then a single deduplicated request allgather and
/// a single owner-ships-rows allgather move every needed row, addressed
/// as `(seg_idx << 32) | local_row`. The batch therefore costs five
/// collectives (six with exact re-ranking) **regardless of segment
/// count** — serving cost is independent of commit history. Tombstoned
/// rows are filtered at probe time on every rank identically, and the
/// per-rank partial top lists (merged across segments locally first)
/// merge with the same deterministic rule as the local engine
/// ([`merge_scored_sources`]), so answers are bit-identical to the
/// single-rank multi-segment reader — and hence to a fresh monolithic
/// build over the snapshot's live corpus.
///
/// `queries` must be `Some` on rank 0 (the ingress rank) and is ignored
/// elsewhere. Every rank returns the complete, identical answer batch —
/// callers that only need the answer once can read it from any rank.
/// With `opts.rerank_exact` set, `collection` must be provided on every
/// rank, indexed by global sample id (the simulator shares it by
/// reference; a real deployment would shard the exact sets alongside
/// the buckets).
pub fn dist_query_reader_batch_stats(
    world: &Communicator,
    reader: &IndexReader,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<(Vec<Vec<Neighbor>>, DistQueryStats)> {
    let p = world.size();
    let me = world.rank();
    let len = reader.scheme().len();
    let mut stats =
        DistQueryStats { replicated_bytes: reader.n_rows() * len * 8, ..Default::default() };

    let (signatures, raw_queries) = {
        let _bcast_span = gas_obs::span("dist", "bcast");
        broadcast_query_batch(world, reader, queries, opts, &mut stats)?
    };
    let keep = opts.keep();
    let nqueries = signatures.len();

    let shards = ReaderShards::build(reader, me, p);
    stats.shard_rows = shards.n_rows();
    stats.shard_bytes = shards.bytes();

    // Phase 2, no communication: probe this rank's band shard of every
    // segment (skipping tombstoned rows) before any exchange, so the
    // row requests of all segments batch into one keyed round.
    let (per_segment_candidates, wanted) = {
        let mut probe_span = gas_obs::span("dist", "probe");
        let per_segment_candidates =
            live_candidates_by_segment(reader, &signatures, |band| band_shard(band, p) == me);
        let mut wanted: Vec<u64> = Vec::new();
        for (seg_idx, per_query) in per_segment_candidates.iter().enumerate() {
            let shard = shards.segment(seg_idx);
            for candidates in per_query {
                wanted.extend(
                    candidates
                        .iter()
                        .filter(|&&local| !shard.owns(local))
                        .map(|&l| row_key(seg_idx, l)),
                );
            }
        }
        wanted.sort_unstable();
        wanted.dedup();
        probe_span.annotate("wanted_rows", wanted.len() as f64);
        (per_segment_candidates, wanted)
    };

    // Phases 3–4: the one request/fetch pair for the whole snapshot.
    let fetched = {
        let _exchange_span = gas_obs::span("dist", "exchange");
        exchange_keyed_rows(world, &shards, &wanted, &mut stats)?
    };
    stats.fetched_rows = fetched.n_rows();
    stats.fetched_bytes = fetched.data_bytes();
    stats.fetched_fingerprint = fetched.fingerprint();

    // Score every segment locally — rows come from the segment shard or
    // the keyed fetched set, never from a replicated matrix.
    let mut per_query_entries: Vec<Vec<Scored>> = vec![Vec::new(); nqueries];
    {
        let _score_span = gas_obs::span("dist", "score");
        for (seg_idx, seg) in reader.segments().iter().enumerate() {
            let shard = shards.segment(seg_idx);
            let per_query = &per_segment_candidates[seg_idx];
            stats.per_segment.push(segment_exchange_stats(seg, shard, per_query));
            let view = SegmentView { idx: seg_idx, seg, shard };
            score_segment(&view, &fetched, &signatures, per_query, keep, &mut per_query_entries);
        }
    }

    // Local cross-segment merge, so the wire carries at most `keep`
    // entries per query per rank no matter how many segments exist.
    let partials: Vec<Vec<Scored>> =
        per_query_entries.into_iter().map(|entries| merge_scored_sources(entries, keep)).collect();

    let answers = {
        let _merge_span = gas_obs::span("dist", "merge");
        merge_partials_and_finalize(
            world,
            partials,
            &raw_queries,
            collection,
            opts,
            len,
            &mut stats,
        )?
    };
    // Fold the wire accounting into the global registry: byte counters
    // accumulate over every rank (their sum is the cluster-wide traffic,
    // the quantity the cost model prices); the per-batch counters move
    // once per batch, on the ingress rank only.
    gas_obs::counter("gas_dist_bcast_bytes_total").add(stats.bcast_bytes as u64);
    gas_obs::counter("gas_dist_request_bytes_total").add(stats.request_bytes as u64);
    gas_obs::counter("gas_dist_fetch_bytes_total").add(stats.fetch_bytes as u64);
    gas_obs::counter("gas_dist_merge_bytes_total").add(stats.merge_bytes as u64);
    if me == 0 {
        gas_obs::counter("gas_dist_query_batches_total").inc();
        gas_obs::counter("gas_dist_collectives_total").add(stats.collective_calls as u64);
    }
    Ok((answers, stats))
}

/// The pre-keyed exchange, retained as the O(#segments) reference: the
/// same probe, scoring, and merge as [`dist_query_reader_batch_stats`],
/// but the request/fetch allgather pair runs **once per segment**, so a
/// snapshot of `s` segments costs `4 + 2·s` collectives (5 + 2·s with
/// exact re-ranking... exactly `2·(s − 1)` more than the keyed path).
/// Answers are bit-identical to the keyed path — the equivalence
/// proptest pins that, along with identical fetched row content per
/// rank — and the `query_throughput` segment sweep reports both paths'
/// collective counts side by side.
pub fn dist_query_reader_batch_stats_per_segment(
    world: &Communicator,
    reader: &IndexReader,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<(Vec<Vec<Neighbor>>, DistQueryStats)> {
    let p = world.size();
    let me = world.rank();
    let len = reader.scheme().len();
    let mut stats =
        DistQueryStats { replicated_bytes: reader.n_rows() * len * 8, ..Default::default() };

    let (signatures, raw_queries) =
        broadcast_query_batch(world, reader, queries, opts, &mut stats)?;
    let keep = opts.keep();
    let nqueries = signatures.len();

    let shards = ReaderShards::build(reader, me, p);
    stats.shard_rows = shards.n_rows();
    stats.shard_bytes = shards.bytes();

    let per_segment_candidates =
        live_candidates_by_segment(reader, &signatures, |band| band_shard(band, p) == me);
    let mut per_query_entries: Vec<Vec<Scored>> = vec![Vec::new(); nqueries];
    for (seg_idx, seg) in reader.segments().iter().enumerate() {
        let shard = shards.segment(seg_idx);
        let per_query = &per_segment_candidates[seg_idx];
        let mut wanted: Vec<u64> = per_query
            .iter()
            .flatten()
            .filter(|&&local| !shard.owns(local))
            .map(|&local| row_key(seg_idx, local))
            .collect();
        wanted.sort_unstable();
        wanted.dedup();
        let fetched = exchange_keyed_rows(world, &shards, &wanted, &mut stats)?;
        stats.fetched_rows += fetched.n_rows();
        stats.fetched_bytes += fetched.data_bytes();
        stats.fetched_fingerprint = stats.fetched_fingerprint.wrapping_add(fetched.fingerprint());
        stats.per_segment.push(segment_exchange_stats(seg, shard, per_query));
        let view = SegmentView { idx: seg_idx, seg, shard };
        score_segment(&view, &fetched, &signatures, per_query, keep, &mut per_query_entries);
    }

    let partials: Vec<Vec<Scored>> =
        per_query_entries.into_iter().map(|entries| merge_scored_sources(entries, keep)).collect();

    let answers = merge_partials_and_finalize(
        world,
        partials,
        &raw_queries,
        collection,
        opts,
        len,
        &mut stats,
    )?;
    Ok((answers, stats))
}

/// Serve a batch of top-k queries over a lifecycle snapshot (the
/// stats-free form of [`dist_query_reader_batch_stats`]).
pub fn dist_query_reader_batch(
    world: &Communicator,
    reader: &IndexReader,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<Vec<Vec<Neighbor>>> {
    dist_query_reader_batch_stats(world, reader, collection, queries, opts)
        .map(|(answers, _)| answers)
}

/// Serve one page per query over the shards of `world` — the
/// distributed form of [`crate::query::QueryEngine::query_page_batch`].
///
/// The full candidate ranking is computed distributedly (the same five
/// collectives as [`dist_query_reader_batch`], with an unbounded `top_k`
/// so no pool truncates the scan); the page cut — min-score filter,
/// cursor offset, next-cursor — is then applied locally and identically
/// on every rank. Since the full distributed ranking is bit-identical
/// to the single-rank engine's, every page is bit-identical to the page
/// [`crate::query::QueryEngine::query_page`] serves from the same
/// snapshot, and cursors are interchangeable between the two paths.
pub fn dist_query_reader_page(
    world: &Communicator,
    reader: &IndexReader,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    req: &PageRequest,
) -> IndexResult<Vec<QueryPage>> {
    if req.page_size == 0 {
        return Err(IndexError::InvalidQuery("page_size must be ≥ 1".into()));
    }
    let offset = match req.cursor {
        Some(cursor) => {
            if cursor.generation() != reader.generation() {
                return Err(IndexError::StaleCursor {
                    cursor_generation: cursor.generation(),
                    snapshot_generation: reader.generation(),
                });
            }
            cursor.offset() as usize
        }
        None => 0,
    };
    let full = QueryOptions { top_k: usize::MAX, oversample: 1, rerank_exact: req.rerank_exact };
    let answers = dist_query_reader_batch(world, reader, collection, queries, &full)?;
    Ok(answers
        .into_iter()
        .map(|ranking| {
            let total_candidates = ranking.len();
            let ranking: Vec<Neighbor> =
                ranking.into_iter().filter(|n| n.score >= req.min_score).collect();
            let start = offset.min(ranking.len());
            let end = offset.saturating_add(req.page_size).min(ranking.len());
            let next_cursor =
                (end < ranking.len()).then(|| PageCursor::new(reader.generation(), end as u64));
            QueryPage { hits: ranking[start..end].to_vec(), next_cursor, total_candidates }
        })
        .collect())
}

/// What one replicated, fault-tolerant query round lost — the exact
/// accounting of degraded serving. `degraded == false` guarantees the
/// answers are bit-identical to a fault-free round (every band and
/// every requested row was served by a surviving replica).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedReport {
    /// Any band or signature row lost all its replicas this round.
    pub degraded: bool,
    /// World ranks injected as crashed (did not participate).
    pub failed_ranks: Vec<usize>,
    /// Band indices with no surviving replica: their bucket tables were
    /// probed by nobody, so candidates only they would surface are
    /// missing from the answers.
    pub lost_bands: Vec<usize>,
    /// Distinct candidate signature rows (across all segments and all
    /// ranks) whose every replica is crashed — surfaced by a probe but
    /// unscorable, dropped from the ranking.
    pub lost_rows: usize,
}

/// This rank's replica copies under `replication`-way slot replication,
/// plus the serving table the whole world agrees on.
///
/// Replication raises both shardings at once: slot `j` owns bands
/// `b ≡ j (mod p)` *and* signature rows `local ≡ j (mod p)`, and slot
/// `j`'s replicas live on ranks `(j + k) % p` for `k < replication` —
/// so one slot→rank table covers band probing and row shipping. The
/// **first alive replica** of a slot serves it; a slot with every
/// replica crashed is *lost*, and the fault spec (common knowledge in
/// the simulator, a membership service in a real deployment) makes
/// every survivor compute the identical table.
struct ReplicaShards {
    me: usize,
    nranks: usize,
    /// slot → serving world rank; `None` = every replica crashed.
    serving: Vec<Option<usize>>,
    /// home slot → this rank's copy of that slot's shards.
    replicas: std::collections::BTreeMap<usize, ReaderShards>,
}

impl ReplicaShards {
    fn build(
        reader: &IndexReader,
        me: usize,
        nranks: usize,
        replication: usize,
        serving: &[Option<usize>],
    ) -> Self {
        let mut replicas = std::collections::BTreeMap::new();
        for k in 0..replication {
            let home = (me + nranks - (k % nranks)) % nranks;
            replicas.entry(home).or_insert_with(|| ReaderShards::build(reader, home, nranks));
        }
        ReplicaShards { me, nranks, serving: serving.to_vec(), replicas }
    }

    fn len(&self) -> usize {
        self.replicas.values().next().expect("k=0 home always present").len
    }

    /// Does this rank serve `key`'s slot this round (it is the first
    /// alive replica)?
    fn serves_key(&self, key: u64) -> bool {
        let (_, local) = split_row_key(key);
        self.serving[sample_shard(local as usize, self.nranks)] == Some(self.me)
    }

    /// The signature row of a key this rank serves.
    fn row(&self, key: u64) -> &[u64] {
        let (_, local) = split_row_key(key);
        let slot = sample_shard(local as usize, self.nranks);
        self.replicas[&slot].row(key)
    }

    /// Range-validate a key that arrived over the wire.
    fn validate_key(&self, key: u64) -> IndexResult<()> {
        self.replicas.values().next().expect("k=0 home always present").owns_key(key).map(|_| ())
    }

    fn n_rows(&self) -> usize {
        self.replicas.values().map(ReaderShards::n_rows).sum()
    }

    fn bytes(&self) -> usize {
        self.replicas.values().map(ReaderShards::bytes).sum()
    }
}

/// [`exchange_keyed_rows`] under replication: the ship rule is "I am
/// the first alive replica of the key's slot" instead of plain
/// ownership, so every requested row still arrives exactly once no
/// matter which replicas crashed.
fn exchange_replicated_rows(
    world: &Communicator,
    replicas: &ReplicaShards,
    wanted: &[u64],
    stats: &mut DistQueryStats,
) -> IndexResult<KeyedRows> {
    let me = world.rank();
    let len = replicas.len();
    let all_requests: Vec<Vec<u64>> = world.allgatherv(wanted)?;
    stats.collective_calls += 1;
    stats.request_bytes += foreign_words(&all_requests, me) * 8;

    let mut to_ship: Vec<u64> = Vec::new();
    for &key in all_requests.iter().flatten() {
        replicas.validate_key(key)?;
        if replicas.serves_key(key) {
            to_ship.push(key);
        }
    }
    to_ship.sort_unstable();
    to_ship.dedup();

    let mut payload = Vec::with_capacity(to_ship.len() * (len + 1));
    for &key in &to_ship {
        payload.push(key);
        payload.extend_from_slice(replicas.row(key));
    }
    let shipped: Vec<Vec<u64>> = world.allgatherv(&payload)?;
    stats.collective_calls += 1;
    stats.fetch_bytes += foreign_words(&shipped, me) * 8;

    let mut fetched: Vec<(u64, usize, usize)> = Vec::with_capacity(wanted.len());
    for (rank, stream) in shipped.iter().enumerate() {
        if stream.len() % (len + 1) != 0 {
            return Err(IndexError::Corrupt {
                context: format!(
                    "signature-row stream from subgroup rank {rank} is {} words, not a \
                     multiple of {}",
                    stream.len(),
                    len + 1
                ),
            });
        }
        for slot in 0..stream.len() / (len + 1) {
            let base = slot * (len + 1);
            let key = stream[base];
            replicas.validate_key(key)?;
            if wanted.binary_search(&key).is_ok() {
                fetched.push((key, rank, base + 1));
            }
        }
    }
    fetched.sort_unstable_by_key(|&(key, _, _)| key);
    let mut keys = Vec::with_capacity(fetched.len());
    let mut rows = Vec::with_capacity(fetched.len() * len);
    for (key, rank, start) in fetched {
        keys.push(key);
        rows.extend_from_slice(&shipped[rank][start..start + len]);
    }
    let out = KeyedRows { keys, rows, len };
    // Lost-slot keys were dropped before requesting, so every wanted
    // key has a live server: a hole still means divergence, not a
    // crash.
    if let Some(&missing) = wanted.iter().find(|&&key| out.row(key).is_none()) {
        return Err(IndexError::Corrupt {
            context: format!("no surviving replica shipped requested row key {missing:#x}"),
        });
    }
    Ok(out)
}

/// [`score_segment`] under replication: local resolution is "my served
/// slots" instead of plain ownership.
#[allow(clippy::too_many_arguments)]
fn score_segment_replicated(
    seg_idx: usize,
    seg: &Segment,
    replicas: &ReplicaShards,
    fetched: &KeyedRows,
    signatures: &[MinHashSignature],
    per_query_candidates: &[Vec<u32>],
    keep: usize,
    per_query_entries: &mut [Vec<Scored>],
) {
    for (q, (sig, candidates)) in signatures.iter().zip(per_query_candidates).enumerate() {
        let score_of = |local: u32| -> u32 {
            let key = row_key(seg_idx, local);
            let row = if replicas.serves_key(key) {
                replicas.row(key)
            } else {
                fetched.row(key).expect("validated by exchange_replicated_rows")
            };
            signature_agreement(sig.values(), row) as u32
        };
        per_query_entries[q].extend(
            lsh_top_by(&score_of, candidates, keep)
                .into_iter()
                .map(|(a, local)| (a, seg.global_id(local as usize))),
        );
    }
}

/// [`dist_query_reader_batch_stats`] with `replication`-way band/row
/// replication and crash failover: every slot's bands and rows are
/// stored on `replication` consecutive ranks, survivors regroup in a
/// deterministic subgroup (crashed ranks cannot participate in a
/// collective constructor), and each slot is served by its **first
/// alive replica** — the identical code path fault-free and faulted.
///
/// * Full coverage (every slot has a surviving replica): answers are
///   **bit-identical** to the fault-free round and
///   [`DegradedReport::degraded`] is `false`.
/// * Lost coverage: the round still completes with a typed, exactly
///   accounted [`DegradedReport`] — `lost_bands` names every unprobed
///   band, `lost_rows` counts every dropped candidate row, and the
///   `gas_dist_degraded_*` counters move. Never a panic in the serving
///   path.
/// * A crashed rank returns the typed error
///   [`gas_dstsim::SimError::RankCrashed`] instead of answers.
///
/// `queries` must be `Some` on the **lowest alive rank** (the ingress
/// seat fails over with everything else). `replication` is clamped to
/// `1..=p`; `replication == 1` is the unreplicated sharding, where any
/// crash degrades.
pub fn dist_query_reader_batch_replicated(
    world: &Communicator,
    reader: &IndexReader,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
    replication: usize,
) -> IndexResult<(Vec<Vec<Neighbor>>, DegradedReport, DistQueryStats)> {
    let p = world.size();
    let me = world.rank();
    if world.is_crashed() {
        return Err(gas_dstsim::SimError::RankCrashed { rank: me }.into());
    }
    let alive = world.alive_world_ranks();
    let sub = world.subgroup(&alive)?;
    let replication = replication.clamp(1, p);
    let serving: Vec<Option<usize>> = (0..p)
        .map(|j| (0..replication).map(|k| (j + k) % p).find(|r| alive.binary_search(r).is_ok()))
        .collect();
    let failed_ranks: Vec<usize> = (0..p).filter(|r| alive.binary_search(r).is_err()).collect();

    let len = reader.scheme().len();
    let mut stats =
        DistQueryStats { replicated_bytes: reader.n_rows() * len * 8, ..Default::default() };

    let (signatures, raw_queries) = {
        let _bcast_span = gas_obs::span("dist", "bcast");
        broadcast_query_batch(&sub, reader, queries, opts, &mut stats)?
    };
    let keep = opts.keep();
    let nqueries = signatures.len();

    let replicas = ReplicaShards::build(reader, me, p, replication, &serving);
    stats.shard_rows = replicas.n_rows();
    stats.shard_bytes = replicas.bytes();

    // Probe the bands whose slot this rank serves; then split the
    // candidates into scorable rows and lost ones (row slot has no
    // surviving replica) — the latter are dropped, not guessed at.
    let (per_segment_candidates, wanted, dropped) = {
        let mut probe_span = gas_obs::span("dist", "probe");
        let mut per_segment_candidates = live_candidates_by_segment(reader, &signatures, |band| {
            serving[band_shard(band, p)] == Some(me)
        });
        let mut dropped: Vec<u64> = Vec::new();
        let mut wanted: Vec<u64> = Vec::new();
        for (seg_idx, per_query) in per_segment_candidates.iter_mut().enumerate() {
            for candidates in per_query.iter_mut() {
                candidates.retain(|&local| {
                    let key = row_key(seg_idx, local);
                    match serving[sample_shard(local as usize, p)] {
                        None => {
                            dropped.push(key);
                            false
                        }
                        Some(server) => {
                            if server != me {
                                wanted.push(key);
                            }
                            true
                        }
                    }
                });
            }
        }
        wanted.sort_unstable();
        wanted.dedup();
        dropped.sort_unstable();
        dropped.dedup();
        probe_span.annotate("wanted_rows", wanted.len() as f64);
        probe_span.annotate("dropped_rows", dropped.len() as f64);
        (per_segment_candidates, wanted, dropped)
    };

    // Exact global accounting of lost rows: one allgather so every
    // survivor reports the identical union (a row several ranks'
    // probes surfaced is lost once, not once per rank).
    let all_dropped: Vec<Vec<u64>> = sub.allgatherv(&dropped)?;
    stats.collective_calls += 1;
    let mut lost_keys: Vec<u64> = all_dropped.into_iter().flatten().collect();
    lost_keys.sort_unstable();
    lost_keys.dedup();

    let fetched = {
        let _exchange_span = gas_obs::span("dist", "exchange");
        exchange_replicated_rows(&sub, &replicas, &wanted, &mut stats)?
    };
    stats.fetched_rows = fetched.n_rows();
    stats.fetched_bytes = fetched.data_bytes();
    stats.fetched_fingerprint = fetched.fingerprint();

    let mut per_query_entries: Vec<Vec<Scored>> = vec![Vec::new(); nqueries];
    {
        let _score_span = gas_obs::span("dist", "score");
        for (seg_idx, seg) in reader.segments().iter().enumerate() {
            score_segment_replicated(
                seg_idx,
                seg,
                &replicas,
                &fetched,
                &signatures,
                &per_segment_candidates[seg_idx],
                keep,
                &mut per_query_entries,
            );
        }
    }
    let partials: Vec<Vec<Scored>> =
        per_query_entries.into_iter().map(|entries| merge_scored_sources(entries, keep)).collect();

    let answers = {
        let _merge_span = gas_obs::span("dist", "merge");
        merge_partials_and_finalize(
            &sub,
            partials,
            &raw_queries,
            collection,
            opts,
            len,
            &mut stats,
        )?
    };

    let lost_bands: Vec<usize> =
        (0..reader.params().bands()).filter(|&b| serving[band_shard(b, p)].is_none()).collect();
    let lost_rows = lost_keys.len();
    let degraded = !lost_bands.is_empty() || lost_rows > 0;
    if sub.rank() == 0 {
        if degraded {
            gas_obs::counter("gas_dist_degraded_batches_total").inc();
            gas_obs::counter("gas_dist_lost_bands_total").add(lost_bands.len() as u64);
            gas_obs::counter("gas_dist_lost_rows_total").add(lost_rows as u64);
        }
        if !failed_ranks.is_empty() {
            gas_obs::counter("gas_dist_failover_batches_total").inc();
        }
    }
    Ok((answers, DegradedReport { degraded, failed_ranks, lost_bands, lost_rows }, stats))
}

/// Serve a batch of top-k queries over the band and signature shards of
/// `world` for a monolithic index (the single-segment convenience form
/// of [`dist_query_reader_batch_stats`]).
pub fn dist_query_batch_stats(
    world: &Communicator,
    index: &SketchIndex,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<(Vec<Vec<Neighbor>>, DistQueryStats)> {
    dist_query_reader_batch_stats(world, &index.as_reader(), collection, queries, opts)
}

/// Serve a batch of top-k queries over the shards of `world` (the
/// stats-free form of [`dist_query_batch_stats`]).
pub fn dist_query_batch(
    world: &Communicator,
    index: &SketchIndex,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<Vec<Vec<Neighbor>>> {
    dist_query_batch_stats(world, index, collection, queries, opts).map(|(answers, _)| answers)
}

// ---- planned mixed placement: replicate hot segments, shard the rest ----

/// How one segment of a snapshot is served under a mixed placement
/// ([`dist_query_reader_batch_planned`]). The planner (`gas-plan`)
/// prices both strategies per segment against the α–β–γ machine model
/// and observed probe heat; the serving path here only *executes* the
/// decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentPlacement {
    /// Every rank holds the segment's full signature matrix (installed
    /// once by [`install_placement`]); candidate rows resolve locally
    /// and never enter the per-batch keyed exchange. Pays `~rows/p·(p−1)`
    /// install rows once, then zero fetch traffic per batch — the right
    /// call for large, old, compacted segments with sustained probe heat.
    Replicated,
    /// The segment's rows stay sharded round-robin ([`sample_shard`]);
    /// non-owned candidates are fetched through the keyed exchange every
    /// batch. Zero install cost — the right call for small fresh
    /// segments that compaction will soon rewrite anyway.
    Sharded,
}

/// Accounting of one [`install_placement`] round, per rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementInstallStats {
    /// Segments the plan replicates (installed or reused).
    pub replicated_segments: usize,
    /// Of those, segments whose replica was carried over from `prior`
    /// without touching the wire (segments are immutable once sealed,
    /// so a matching id means matching bytes).
    pub reused_segments: usize,
    /// Rows newly assembled into full local replicas this round.
    pub installed_rows: usize,
    /// Resident bytes of all replica matrices after the install (in
    /// addition to the keyed shard this rank keeps for every segment).
    pub replica_bytes: usize,
    /// Wire bytes this rank received in the install allgather — equal
    /// to the simulator's `bytes_received` for the round.
    pub install_bytes: usize,
    /// Always 1: the install is a single allgather no matter how many
    /// segments change placement (zero-payload when nothing does), so
    /// plan changes never reintroduce O(#segments) collectives.
    pub collective_calls: usize,
}

/// One rank's serving state under a mixed placement: the keyed shards
/// of every segment (probing and sharded serving need them) plus full
/// local replicas of the segments the plan replicates.
///
/// Built collectively by [`install_placement`]; executed per batch by
/// [`dist_query_reader_batch_planned`]. The replica matrices are
/// assembled from the very shard rows the keyed exchange would have
/// shipped, so a replicated segment's rows are byte-identical to the
/// sharded resolution of the same rows — the planned path's answers
/// stay bit-identical to the keyed path's (and the single-rank
/// engine's) under **every** placement.
pub struct PlannedShards {
    shards: ReaderShards,
    placements: Vec<SegmentPlacement>,
    /// Segment ids in the reader's segment order — the identity the
    /// next install matches replicas against, and the guard that a
    /// batch runs against the snapshot it was installed for.
    seg_ids: Vec<u64>,
    /// seg_idx → full `n_rows × len` signature matrix.
    replicas: std::collections::BTreeMap<usize, Vec<u64>>,
    len: usize,
}

impl PlannedShards {
    /// The placement this state serves, in the reader's segment order.
    pub fn placements(&self) -> &[SegmentPlacement] {
        &self.placements
    }

    /// Rows resident on this rank: the keyed shards plus the replicas.
    pub fn resident_rows(&self) -> usize {
        self.shards.n_rows() + self.replicas.values().map(|m| m.len() / self.len).sum::<usize>()
    }

    /// Bytes resident on this rank (shards + replicas).
    pub fn resident_bytes(&self) -> usize {
        self.shards.bytes() + self.replica_bytes()
    }

    /// Bytes of the replica matrices alone.
    pub fn replica_bytes(&self) -> usize {
        self.replicas.values().map(|m| m.len() * 8).sum()
    }

    /// A replicated segment's signature row, resolved locally.
    fn replica_row(&self, seg_idx: usize, local: u32) -> &[u64] {
        let matrix = &self.replicas[&seg_idx];
        &matrix[local as usize * self.len..(local as usize + 1) * self.len]
    }
}

/// Collectively install a placement: ship every newly-replicated
/// segment's shard rows in **one** allgather so each rank can assemble
/// full local replicas, and carry unchanged replicas over from `prior`
/// for free (segments are immutable once sealed, so matching ids mean
/// matching bytes — re-planning an overlapping placement only pays for
/// the delta).
///
/// Every rank must call this with the identical `placements` (one entry
/// per reader segment, in segment order); the single allgather runs even
/// when nothing ships, so the collective schedule stays in lockstep and
/// deterministic. Row streams use the `[key, row...]` framing of the
/// keyed exchange and are validated the same way — a hole in an
/// assembled replica is typed corruption, never a panic.
pub fn install_placement(
    world: &Communicator,
    reader: &IndexReader,
    placements: &[SegmentPlacement],
    prior: Option<&PlannedShards>,
) -> IndexResult<(PlannedShards, PlacementInstallStats)> {
    let p = world.size();
    let me = world.rank();
    let len = reader.scheme().len();
    let segments = reader.segments();
    if placements.len() != segments.len() {
        return Err(IndexError::InvalidQuery(format!(
            "placement has {} entries for a snapshot of {} segments",
            placements.len(),
            segments.len()
        )));
    }
    let seg_ids: Vec<u64> = segments.iter().map(|seg| seg.id()).collect();
    let shards = ReaderShards::build(reader, me, p);
    let mut stats = PlacementInstallStats::default();

    // Reuse first: any replicated segment whose id had a replica in the
    // prior state keeps it without touching the wire.
    let mut replicas = std::collections::BTreeMap::new();
    let mut installing: Vec<usize> = Vec::new();
    for (seg_idx, placement) in placements.iter().enumerate() {
        if *placement != SegmentPlacement::Replicated {
            continue;
        }
        stats.replicated_segments += 1;
        let prior_replica = prior.and_then(|prev| {
            prev.seg_ids
                .iter()
                .position(|&id| id == seg_ids[seg_idx])
                .and_then(|prev_idx| prev.replicas.get(&prev_idx))
        });
        match prior_replica {
            Some(matrix) => {
                replicas.insert(seg_idx, matrix.clone());
                stats.reused_segments += 1;
            }
            None => installing.push(seg_idx),
        }
    }

    // One allgather ships this rank's shard rows of every segment being
    // installed; each row travels once per non-owning rank, exactly what
    // the keyed exchange would charge to fetch it.
    let mut payload: Vec<u64> = Vec::new();
    for &seg_idx in &installing {
        let shard = shards.segment(seg_idx);
        for local in 0..segments[seg_idx].n_rows() as u32 {
            if shard.owns(local) {
                payload.push(row_key(seg_idx, local));
                payload.extend_from_slice(shard.row(local));
            }
        }
    }
    let shipped: Vec<Vec<u64>> = world.allgatherv(&payload)?;
    stats.collective_calls += 1;
    stats.install_bytes += foreign_words(&shipped, me) * 8;

    // Assemble each installing segment's full matrix from the streams
    // (own rows included — every rank shipped its shard), validating
    // framing, key range, and completeness.
    let mut matrices: std::collections::BTreeMap<usize, (Vec<u64>, Vec<bool>)> = installing
        .iter()
        .map(|&seg_idx| {
            let rows = segments[seg_idx].n_rows();
            (seg_idx, (vec![0u64; rows * len], vec![false; rows]))
        })
        .collect();
    for (rank, stream) in shipped.iter().enumerate() {
        if stream.len() % (len + 1) != 0 {
            return Err(IndexError::Corrupt {
                context: format!(
                    "placement-install stream from rank {rank} is {} words, not a multiple of {}",
                    stream.len(),
                    len + 1
                ),
            });
        }
        for slot in 0..stream.len() / (len + 1) {
            let base = slot * (len + 1);
            let key = stream[base];
            shards.owns_key(key)?; // range validation; ownership is the shipper's
            let (seg_idx, local) = split_row_key(key);
            if let Some((matrix, filled)) = matrices.get_mut(&seg_idx) {
                matrix[local as usize * len..(local as usize + 1) * len]
                    .copy_from_slice(&stream[base + 1..base + 1 + len]);
                filled[local as usize] = true;
            }
        }
    }
    for (seg_idx, (matrix, filled)) in matrices {
        if let Some(local) = filled.iter().position(|&f| !f) {
            return Err(IndexError::Corrupt {
                context: format!(
                    "no rank shipped row {local} of segment index {seg_idx} during install"
                ),
            });
        }
        stats.installed_rows += filled.len();
        replicas.insert(seg_idx, matrix);
    }
    stats.replica_bytes = replicas.values().map(|m| m.len() * 8).sum();

    gas_obs::counter("gas_plan_install_bytes_total").add(stats.install_bytes as u64);
    if me == 0 {
        gas_obs::counter("gas_plan_installs_total").inc();
        gas_obs::counter("gas_plan_installed_rows_total").add(stats.installed_rows as u64);
    }
    let planned = PlannedShards { shards, placements: placements.to_vec(), seg_ids, replicas, len };
    Ok((planned, stats))
}

/// Score one replicated segment's candidates from the local replica —
/// the same `lsh_top_by` scan as [`score_segment`], with every row
/// resolving locally. Replica rows are byte-identical to the shard rows
/// they were assembled from, so the entries (and therefore the merged
/// answers) match the sharded resolution bit for bit.
fn score_segment_replica(
    seg_idx: usize,
    seg: &Segment,
    planned: &PlannedShards,
    signatures: &[MinHashSignature],
    per_query_candidates: &[Vec<u32>],
    keep: usize,
    per_query_entries: &mut [Vec<Scored>],
) {
    for (q, (sig, candidates)) in signatures.iter().zip(per_query_candidates).enumerate() {
        let score_of = |local: u32| -> u32 {
            signature_agreement(sig.values(), planned.replica_row(seg_idx, local)) as u32
        };
        per_query_entries[q].extend(
            lsh_top_by(&score_of, candidates, keep)
                .into_iter()
                .map(|(a, local)| (a, seg.global_id(local as usize))),
        );
    }
}

/// Serve a batch of top-k queries under a mixed per-segment placement:
/// replicated segments resolve every candidate locally, sharded ones go
/// through the keyed exchange — in the **same** single request/fetch
/// pair, so the batch still costs five collectives (six with exact
/// re-ranking) no matter how the plan splits the snapshot.
///
/// Band probing stays band-sharded for every segment regardless of its
/// placement (probe work stays balanced at `~b/p` tables per rank, and
/// the candidate sets — hence the answers — are those of
/// [`dist_query_reader_batch_stats`] by construction); only *row
/// resolution* changes. A replicated segment's candidates never enter
/// the `wanted` list, so its per-batch fetch traffic is exactly zero —
/// the term the planner trades against the one-time install cost.
/// Answers are bit-identical to the keyed path and the single-rank
/// engine under every placement; the `query_serving` proptest pins that
/// across random placements.
///
/// `planned` must have been installed (every rank with the identical
/// plan) against this same snapshot — a generation mismatch is a typed
/// error on every rank before any collective runs.
pub fn dist_query_reader_batch_planned(
    world: &Communicator,
    reader: &IndexReader,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
    planned: &PlannedShards,
) -> IndexResult<(Vec<Vec<Neighbor>>, DistQueryStats)> {
    let p = world.size();
    let me = world.rank();
    let len = reader.scheme().len();
    let seg_ids: Vec<u64> = reader.segments().iter().map(|seg| seg.id()).collect();
    if planned.seg_ids != seg_ids || planned.len != len {
        return Err(IndexError::InvalidQuery(
            "placement was installed for a different snapshot".into(),
        ));
    }
    let mut stats =
        DistQueryStats { replicated_bytes: reader.n_rows() * len * 8, ..Default::default() };

    let (signatures, raw_queries) = {
        let _bcast_span = gas_obs::span("dist", "bcast");
        broadcast_query_batch(world, reader, queries, opts, &mut stats)?
    };
    let keep = opts.keep();
    let nqueries = signatures.len();
    stats.shard_rows = planned.shards.n_rows();
    stats.shard_bytes = planned.shards.bytes();

    // Probe exactly as the keyed path does — placement never changes
    // which candidates surface — but only sharded segments' non-owned
    // candidates enter the request list.
    let (per_segment_candidates, wanted) = {
        let mut probe_span = gas_obs::span("dist", "probe");
        let per_segment_candidates =
            live_candidates_by_segment(reader, &signatures, |band| band_shard(band, p) == me);
        let mut wanted: Vec<u64> = Vec::new();
        for (seg_idx, per_query) in per_segment_candidates.iter().enumerate() {
            if planned.placements[seg_idx] == SegmentPlacement::Replicated {
                continue;
            }
            let shard = planned.shards.segment(seg_idx);
            for candidates in per_query {
                wanted.extend(
                    candidates
                        .iter()
                        .filter(|&&local| !shard.owns(local))
                        .map(|&l| row_key(seg_idx, l)),
                );
            }
        }
        wanted.sort_unstable();
        wanted.dedup();
        probe_span.annotate("wanted_rows", wanted.len() as f64);
        (per_segment_candidates, wanted)
    };

    let fetched = {
        let _exchange_span = gas_obs::span("dist", "exchange");
        exchange_keyed_rows(world, &planned.shards, &wanted, &mut stats)?
    };
    stats.fetched_rows = fetched.n_rows();
    stats.fetched_bytes = fetched.data_bytes();
    stats.fetched_fingerprint = fetched.fingerprint();

    let mut per_query_entries: Vec<Vec<Scored>> = vec![Vec::new(); nqueries];
    {
        let _score_span = gas_obs::span("dist", "score");
        for (seg_idx, seg) in reader.segments().iter().enumerate() {
            let shard = planned.shards.segment(seg_idx);
            let per_query = &per_segment_candidates[seg_idx];
            if planned.placements[seg_idx] == SegmentPlacement::Replicated {
                // Every candidate resolves from the local replica.
                let mut distinct: Vec<u32> = per_query.iter().flatten().copied().collect();
                distinct.sort_unstable();
                distinct.dedup();
                stats.per_segment.push(SegmentExchangeStats {
                    segment_id: seg.id(),
                    shard_rows: shard.n_rows(),
                    candidate_rows: distinct.len(),
                    owned_rows: distinct.len(),
                    fetched_rows: 0,
                });
                score_segment_replica(
                    seg_idx,
                    seg,
                    planned,
                    &signatures,
                    per_query,
                    keep,
                    &mut per_query_entries,
                );
            } else {
                stats.per_segment.push(segment_exchange_stats(seg, shard, per_query));
                let view = SegmentView { idx: seg_idx, seg, shard };
                score_segment(
                    &view,
                    &fetched,
                    &signatures,
                    per_query,
                    keep,
                    &mut per_query_entries,
                );
            }
        }
    }

    let partials: Vec<Vec<Scored>> =
        per_query_entries.into_iter().map(|entries| merge_scored_sources(entries, keep)).collect();

    let answers = {
        let _merge_span = gas_obs::span("dist", "merge");
        merge_partials_and_finalize(
            world,
            partials,
            &raw_queries,
            collection,
            opts,
            len,
            &mut stats,
        )?
    };
    gas_obs::counter("gas_dist_bcast_bytes_total").add(stats.bcast_bytes as u64);
    gas_obs::counter("gas_dist_request_bytes_total").add(stats.request_bytes as u64);
    gas_obs::counter("gas_dist_fetch_bytes_total").add(stats.fetch_bytes as u64);
    gas_obs::counter("gas_dist_merge_bytes_total").add(stats.merge_bytes as u64);
    if me == 0 {
        gas_obs::counter("gas_plan_planned_batches_total").inc();
        gas_obs::counter("gas_dist_query_batches_total").inc();
        gas_obs::counter("gas_dist_collectives_total").add(stats.collective_calls as u64);
    }
    Ok((answers, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexConfig;
    use crate::lifecycle::IndexWriter;
    use crate::query::QueryEngine;
    use crate::service::IndexOptions;
    use gas_core::minhash::SignerKind;
    use gas_dstsim::runtime::Runtime;

    fn workload() -> SampleCollection {
        let mut samples = Vec::new();
        for f in 0..4u64 {
            let core: Vec<u64> = (f * 50_000..f * 50_000 + 500).collect();
            for m in 0..5u64 {
                let mut s = core.clone();
                s.extend(f * 50_000 + 30_000 + m * 25..f * 50_000 + 30_000 + m * 25 + 25);
                samples.push(s);
            }
        }
        SampleCollection::from_sets(samples).unwrap()
    }

    /// A segmented snapshot over `collection`: `segments` commits of
    /// near-equal size, with `deletes` tombstoned once committed.
    fn segmented_writer(
        collection: &SampleCollection,
        config: &IndexConfig,
        segments: usize,
        deletes: &[u32],
    ) -> IndexWriter {
        let mut writer = IndexOptions::from_config(*config).open_writer().unwrap();
        let n = collection.n();
        let mut start = 0usize;
        for s in 0..segments {
            let end = start + (n - start) / (segments - s);
            for i in start..end {
                writer.add(format!("s{i}"), collection.sample(i).to_vec()).unwrap();
            }
            writer.commit().unwrap();
            for &id in deletes {
                if id < writer.id_bound() && !writer.reader().is_deleted(id) {
                    writer.delete(id).unwrap();
                }
            }
            writer.commit().unwrap();
            start = end;
        }
        writer
    }

    #[test]
    fn band_shard_is_balanced_whenever_bands_cover_ranks() {
        // Probing is only distributed if every rank owns some band, and
        // balanced if ownership counts differ by at most one.
        for p in [2usize, 4, 6, 8, 12] {
            for bands in [16usize, 32, 64] {
                let mut owners = vec![0usize; p];
                for band in 0..bands {
                    let s = band_shard(band, p);
                    assert!(s < p);
                    owners[s] += 1;
                }
                let (lo, hi) = (owners.iter().min().unwrap(), owners.iter().max().unwrap());
                assert!(*lo > 0, "idle rank for p={p}, bands={bands}: {owners:?}");
                assert!(hi - lo <= 1, "imbalance for p={p}, bands={bands}: {owners:?}");
            }
        }
    }

    #[test]
    fn row_keys_round_trip_and_order_by_segment_then_row() {
        for seg in [0usize, 1, 7, 4_000_000_000] {
            for local in [0u32, 1, 17, u32::MAX] {
                assert_eq!(split_row_key(row_key(seg, local)), (seg, local));
            }
        }
        // Sorting keyed requests groups by segment, then local row —
        // the dedup and the owner's ship order rely on it.
        assert!(row_key(0, u32::MAX) < row_key(1, 0));
        assert!(row_key(3, 5) < row_key(3, 6));
    }

    #[test]
    fn partial_stream_round_trips_and_rejects_garbage() {
        let partials = vec![vec![(192u32, 3u32), (10, 7)], vec![], vec![(1, 1)]];
        let stream = encode_partials(&partials);
        let back = decode_partials(&stream, 3).unwrap();
        assert_eq!(back, partials);
        assert!(decode_partials(&stream[..stream.len() - 1], 3).is_err());
        assert!(decode_partials(&stream, 4).is_err());
        assert!(decode_partials(&stream, 2).is_err());
        assert!(decode_partials(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn signature_shards_partition_the_matrix() {
        let collection = workload();
        let index = IndexOptions::from_config(IndexConfig::default().with_signature_len(64))
            .build_index(&collection)
            .unwrap();
        for p in [1usize, 3, 4, 7] {
            let shards: Vec<SignatureShard> =
                (0..p).map(|r| SignatureShard::build(&index, r, p)).collect();
            // Every row is owned by exactly one shard and round-trips.
            let total: usize = shards.iter().map(SignatureShard::n_rows).sum();
            assert_eq!(total, index.n(), "p={p}");
            for id in 0..index.n() as u32 {
                let owner = sample_shard(id as usize, p);
                assert!(shards[owner].owns(id));
                assert_eq!(shards[owner].row(id), index.signature(id as usize).values());
                for (r, shard) in shards.iter().enumerate() {
                    assert_eq!(shard.owns(id), r == owner);
                }
            }
            // Balanced to within one row; bytes match the row count.
            let (lo, hi) = (
                shards.iter().map(SignatureShard::n_rows).min().unwrap(),
                shards.iter().map(SignatureShard::n_rows).max().unwrap(),
            );
            assert!(hi - lo <= 1, "p={p}: shard rows {lo}..{hi}");
            for shard in &shards {
                assert_eq!(shard.bytes(), shard.n_rows() * 64 * 8);
            }
        }
    }

    #[test]
    fn reader_shards_resolve_keys_and_reject_out_of_range_ones() {
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(32);
        let writer = segmented_writer(&collection, &config, 3, &[]);
        let reader = writer.reader();
        for p in [1usize, 2, 5] {
            let all: Vec<ReaderShards> =
                (0..p).map(|r| ReaderShards::build(&reader, r, p)).collect();
            assert_eq!(all[0].n_segments(), 3);
            // Shards partition every segment's rows; keyed resolution
            // round-trips byte-identically to the segment's matrix.
            let total: usize = all.iter().map(ReaderShards::n_rows).sum();
            assert_eq!(total, reader.n_rows(), "p={p}");
            for (seg_idx, seg) in reader.segments().iter().enumerate() {
                for local in 0..seg.n_rows() as u32 {
                    let key = row_key(seg_idx, local);
                    let owner = sample_shard(local as usize, p);
                    for (r, shards) in all.iter().enumerate() {
                        assert_eq!(shards.owns_key(key).unwrap(), r == owner);
                    }
                    assert_eq!(all[owner].row(key), seg.signature(local as usize).values());
                }
            }
            // Out-of-range keys are typed corruption, never a panic.
            let bad_seg = row_key(3, 0);
            let bad_row = row_key(0, reader.segments()[0].n_rows() as u32);
            assert!(matches!(all[0].owns_key(bad_seg), Err(IndexError::Corrupt { .. })));
            assert!(matches!(all[0].owns_key(bad_row), Err(IndexError::Corrupt { .. })));
        }
    }

    #[test]
    #[should_panic]
    fn signature_shard_row_panics_on_foreign_ids() {
        let collection = workload();
        let index = IndexOptions::from_config(IndexConfig::default().with_signature_len(16))
            .build_index(&collection)
            .unwrap();
        let shard = SignatureShard::build(&index, 0, 2);
        let _ = shard.row(1); // owned by rank 1
    }

    #[test]
    fn distributed_answers_equal_single_rank_answers() {
        let collection = workload();
        for signer in [SignerKind::KMins, SignerKind::Oph] {
            let config = IndexConfig::default()
                .with_signature_len(128)
                .with_threshold(0.4)
                .with_signer(signer);
            let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
            let queries: Vec<Vec<u64>> =
                (0..6).map(|i| collection.sample(i * 3).to_vec()).collect();

            for rerank in [false, true] {
                let opts = QueryOptions { top_k: 5, rerank_exact: rerank, ..Default::default() };
                let engine = QueryEngine::with_collection(&index, &collection);
                let reference = engine.query_batch(&queries, &opts).unwrap();

                for p in [1usize, 3, 5] {
                    let out = Runtime::new(p)
                        .run(|ctx| {
                            let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                            ctx.expect_ok(
                                "dist_query_batch_stats",
                                dist_query_batch_stats(
                                    ctx.world(),
                                    &index,
                                    Some(&collection),
                                    q,
                                    &opts,
                                ),
                            )
                        })
                        .unwrap();
                    for (rank, (answers, stats)) in out.results.iter().enumerate() {
                        assert_eq!(
                            answers, &reference,
                            "p={p}, rank={rank}, rerank={rerank}, signer={signer}: \
                             distributed answers diverge"
                        );
                        // The shard holds ~n/p rows, never the full matrix
                        // (beyond p = 1), and fetched rows stay within the
                        // non-owned population.
                        assert_eq!(stats.replicated_bytes, index.n() * 128 * 8);
                        assert!(stats.shard_rows <= index.n().div_ceil(p));
                        assert_eq!(stats.shard_bytes, stats.shard_rows * 128 * 8);
                        assert!(stats.fetched_rows <= index.n() - stats.shard_rows);
                        assert_eq!(stats.fetched_bytes, stats.fetched_rows * 128 * 8);
                        // The collectives budget: constant per batch, and
                        // the allgather fan-out is recorded, not hidden.
                        assert_eq!(stats.collective_calls, if rerank { 6 } else { 5 });
                        assert!(
                            stats.fetch_bytes
                                >= stats.fetched_bytes.saturating_sub(stats.fetched_rows * 8)
                        );
                        // One segment → one breakdown entry covering every
                        // candidate exactly once.
                        assert_eq!(stats.per_segment.len(), 1);
                        let seg = &stats.per_segment[0];
                        assert_eq!(seg.shard_rows, stats.shard_rows);
                        assert_eq!(seg.owned_rows + seg.fetched_rows, seg.candidate_rows);
                        assert_eq!(seg.fetched_rows, stats.fetched_rows);
                        if p > 1 {
                            assert!(
                                stats.shard_bytes * 2 < stats.replicated_bytes,
                                "p={p}: shard {} vs replicated {}",
                                stats.shard_bytes,
                                stats.replicated_bytes
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn per_phase_wire_bytes_sum_to_the_cost_report_exactly() {
        // The satellite bugfix pin: the phase byte counters must account
        // for every wire byte the simulator charged this rank — no
        // per-segment double counting, no missing broadcast bytes. The
        // collective count must match the tracker's too.
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(64).with_threshold(0.4);
        let writer = segmented_writer(&collection, &config, 4, &[2, 9]);
        let reader = writer.reader();
        let queries: Vec<Vec<u64>> = (0..5).map(|i| collection.sample(i * 4).to_vec()).collect();
        for rerank in [false, true] {
            let opts = QueryOptions { top_k: 4, rerank_exact: rerank, ..Default::default() };
            for p in [1usize, 2, 4] {
                let out = Runtime::new(p)
                    .run(|ctx| {
                        let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                        ctx.expect_ok(
                            "dist_query_reader_batch_stats",
                            dist_query_reader_batch_stats(
                                ctx.world(),
                                &reader,
                                Some(&collection),
                                q,
                                &opts,
                            ),
                        )
                    })
                    .unwrap();
                for (rank, ((_, stats), report)) in out.results.iter().zip(&out.reports).enumerate()
                {
                    assert_eq!(
                        stats.wire_bytes() as u64,
                        report.bytes_received,
                        "p={p}, rank={rank}, rerank={rerank}: phase bytes diverge from the wire"
                    );
                    assert_eq!(
                        stats.collective_calls as u64, report.collectives,
                        "p={p}, rank={rank}, rerank={rerank}: collective count diverges"
                    );
                    assert_eq!(
                        stats.wire_bytes(),
                        stats.bcast_bytes
                            + stats.request_bytes
                            + stats.fetch_bytes
                            + stats.merge_bytes
                    );
                    // Four segments, one breakdown entry each, candidates
                    // partitioned into owned + fetched.
                    assert_eq!(stats.per_segment.len(), 4);
                    for seg in &stats.per_segment {
                        assert_eq!(seg.owned_rows + seg.fetched_rows, seg.candidate_rows);
                    }
                }
            }
        }
    }

    #[test]
    fn keyed_exchange_matches_the_per_segment_reference() {
        // Same answers, same fetched row content, constant vs linear
        // collective counts — the tentpole equivalence on a concrete
        // multi-segment snapshot with tombstones, both signers.
        let collection = workload();
        for signer in [SignerKind::KMins, SignerKind::Oph] {
            let config = IndexConfig::default()
                .with_signature_len(64)
                .with_threshold(0.4)
                .with_signer(signer);
            let segments = 5usize;
            let writer = segmented_writer(&collection, &config, segments, &[1, 7, 13]);
            let reader = writer.reader();
            let queries: Vec<Vec<u64>> =
                (0..6).map(|i| collection.sample(i * 3).to_vec()).collect();
            let opts = QueryOptions { top_k: 5, rerank_exact: true, ..Default::default() };
            let reference = QueryEngine::snapshot_with_collection(reader.clone(), &collection)
                .query_batch(&queries, &opts)
                .unwrap();
            for p in [1usize, 3, 4] {
                let keyed = Runtime::new(p)
                    .run(|ctx| {
                        let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                        ctx.expect_ok(
                            "keyed",
                            dist_query_reader_batch_stats(
                                ctx.world(),
                                &reader,
                                Some(&collection),
                                q,
                                &opts,
                            ),
                        )
                    })
                    .unwrap();
                let legacy = Runtime::new(p)
                    .run(|ctx| {
                        let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                        ctx.expect_ok(
                            "per-segment",
                            dist_query_reader_batch_stats_per_segment(
                                ctx.world(),
                                &reader,
                                Some(&collection),
                                q,
                                &opts,
                            ),
                        )
                    })
                    .unwrap();
                for (rank, ((ka, ks), (la, ls))) in
                    keyed.results.iter().zip(&legacy.results).enumerate()
                {
                    assert_eq!(ka, &reference, "keyed diverges (p={p}, rank={rank}, {signer})");
                    assert_eq!(la, &reference, "legacy diverges (p={p}, rank={rank}, {signer})");
                    // Identical shipped row content (framing may differ).
                    assert_eq!(ks.fetched_rows, ls.fetched_rows);
                    assert_eq!(ks.fetched_bytes, ls.fetched_bytes);
                    assert_eq!(ks.fetched_fingerprint, ls.fetched_fingerprint);
                    assert_eq!(ks.per_segment, ls.per_segment);
                    // The collectives budget: constant vs O(#segments).
                    assert_eq!(ks.collective_calls, 6);
                    assert_eq!(ls.collective_calls, 6 + 2 * (segments - 1));
                }
            }
        }
    }

    #[test]
    fn missing_queries_on_root_errors_on_every_rank_without_hanging() {
        // Every rank calls the collective; rank 0 has no query batch. The
        // validity pre-broadcast must turn that into a typed error on all
        // ranks instead of deadlocking ranks 1..p in the signature bcast.
        let index = IndexOptions::from_config(IndexConfig::default().with_signature_len(16))
            .build_index(&SampleCollection::from_sorted_sets(vec![vec![1, 2, 3]]).unwrap())
            .unwrap();
        let out = Runtime::new(3)
            .run(|ctx| dist_query_batch(ctx.world(), &index, None, None, &QueryOptions::default()))
            .unwrap();
        for result in out.results {
            assert!(matches!(result, Err(IndexError::InvalidQuery(_))), "expected typed error");
        }
    }

    // ---- chaos drills: crash failover and degraded accounting ----

    #[test]
    fn replicated_path_is_bit_identical_fault_free() {
        // With no faults the replicated path must be a transparent
        // superset of the plain keyed path: same answers, degraded
        // false, nothing lost.
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(64).with_threshold(0.4);
        let writer = segmented_writer(&collection, &config, 3, &[2, 9]);
        let reader = writer.reader();
        let queries: Vec<Vec<u64>> = (0..4).map(|i| collection.sample(i * 5).to_vec()).collect();
        let opts = QueryOptions { top_k: 5, ..Default::default() };

        for p in [1usize, 3, 4] {
            let reference = Runtime::new(p)
                .run(|ctx| {
                    let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                    ctx.expect_ok(
                        "plain",
                        dist_query_reader_batch(ctx.world(), &reader, None, q, &opts),
                    )
                })
                .unwrap()
                .results;
            for replication in [1usize, 2] {
                let out = Runtime::new(p)
                    .run(|ctx| {
                        let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                        ctx.expect_ok(
                            "replicated",
                            dist_query_reader_batch_replicated(
                                ctx.world(),
                                &reader,
                                None,
                                q,
                                &opts,
                                replication,
                            ),
                        )
                    })
                    .unwrap();
                for (rank, (answers, report, _)) in out.results.iter().enumerate() {
                    assert_eq!(answers, &reference[0], "p={p}, c={replication}, rank={rank}");
                    assert!(!report.degraded);
                    assert!(report.failed_ranks.is_empty());
                    assert!(report.lost_bands.is_empty());
                    assert_eq!(report.lost_rows, 0);
                }
            }
        }
    }

    #[test]
    fn crashed_rank_with_surviving_replicas_answers_bit_identically() {
        // The acceptance pin: one crashed rank, replication 2 — every
        // band and row still has a surviving replica, so the survivors'
        // answers equal the fault-free run exactly, degraded stays
        // false, and the crashed rank errors typed.
        use gas_dstsim::{RankFaults, SimError};
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(64).with_threshold(0.4);
        let writer = segmented_writer(&collection, &config, 2, &[3]);
        let reader = writer.reader();
        let queries: Vec<Vec<u64>> = (0..4).map(|i| collection.sample(i * 5).to_vec()).collect();
        let opts = QueryOptions { top_k: 5, ..Default::default() };
        let p = 4;

        let reference = Runtime::new(p)
            .run(|ctx| {
                let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                ctx.expect_ok(
                    "fault-free",
                    dist_query_reader_batch_replicated(ctx.world(), &reader, None, q, &opts, 2),
                )
            })
            .unwrap()
            .results;

        for crashed in [1usize, 3] {
            let out = Runtime::new(p)
                .with_faults(RankFaults::none().crash(crashed))
                .run(|ctx| {
                    let q = if ctx.world().alive_world_ranks().first() == Some(&ctx.rank()) {
                        Some(&queries[..])
                    } else {
                        None
                    };
                    dist_query_reader_batch_replicated(ctx.world(), &reader, None, q, &opts, 2)
                })
                .unwrap();
            for (rank, result) in out.results.iter().enumerate() {
                if rank == crashed {
                    assert!(
                        matches!(
                            result,
                            Err(IndexError::Sim(SimError::RankCrashed { rank: r })) if *r == rank
                        ),
                        "crashed rank must error typed, got {result:?}"
                    );
                    continue;
                }
                let (answers, report, _) = result.as_ref().expect("survivor must answer");
                assert_eq!(
                    answers, &reference[0].0,
                    "crashed={crashed}, rank={rank}: failover answers diverge"
                );
                assert!(!report.degraded, "full replica coverage is not degraded");
                assert_eq!(report.failed_ranks, vec![crashed]);
                assert!(report.lost_bands.is_empty());
                assert_eq!(report.lost_rows, 0);
            }
        }
    }

    #[test]
    fn crash_without_replicas_degrades_typed_with_exact_accounting() {
        // replication 1: the crashed rank's slot is lost. The round
        // must still complete — no panic, no hang — with the lost bands
        // named exactly and the flag raised on every survivor.
        use gas_dstsim::RankFaults;
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(64).with_threshold(0.4);
        let writer = segmented_writer(&collection, &config, 2, &[]);
        let reader = writer.reader();
        let queries: Vec<Vec<u64>> = (0..4).map(|i| collection.sample(i * 5).to_vec()).collect();
        let opts = QueryOptions { top_k: 5, ..Default::default() };
        let (p, crashed) = (4usize, 2usize);

        let out = Runtime::new(p)
            .with_faults(RankFaults::none().crash(crashed))
            .run(|ctx| {
                let q = if ctx.world().alive_world_ranks().first() == Some(&ctx.rank()) {
                    Some(&queries[..])
                } else {
                    None
                };
                dist_query_reader_batch_replicated(ctx.world(), &reader, None, q, &opts, 1)
            })
            .unwrap();
        let bands = reader.params().bands();
        let expected_lost: Vec<usize> = (0..bands).filter(|b| b % p == crashed).collect();
        assert!(!expected_lost.is_empty(), "the grid must actually lose bands");
        let mut survivor_answers = Vec::new();
        for (rank, result) in out.results.iter().enumerate() {
            if rank == crashed {
                assert!(result.is_err());
                continue;
            }
            let (answers, report, _) = result.as_ref().expect("survivor must answer degraded");
            assert!(report.degraded, "lost coverage must raise the flag");
            assert_eq!(report.failed_ranks, vec![crashed]);
            assert_eq!(report.lost_bands, expected_lost);
            survivor_answers.push(answers.clone());
        }
        // Survivors agree on the (partial) answers: the degraded round
        // is still deterministic.
        for answers in &survivor_answers[1..] {
            assert_eq!(answers, &survivor_answers[0]);
        }
    }

    #[test]
    fn plain_dist_path_with_a_crashed_rank_errors_typed_everywhere() {
        // The satellite pin at the index level: a failed collective in
        // the unreplicated serving path becomes a typed IndexError on
        // every rank — never a panic, never a poisoned process.
        use gas_dstsim::RankFaults;
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(32);
        let writer = segmented_writer(&collection, &config, 2, &[]);
        let reader = writer.reader();
        let queries: Vec<Vec<u64>> = (0..2).map(|i| collection.sample(i).to_vec()).collect();
        let opts = QueryOptions { top_k: 3, ..Default::default() };

        let out = Runtime::new(4)
            .with_faults(RankFaults::none().crash(1).with_recv_timeout(50_000))
            .run(|ctx| {
                let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                dist_query_reader_batch(ctx.world(), &reader, None, q, &opts)
            })
            .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            assert!(
                matches!(result, Err(IndexError::Sim(_))),
                "rank {rank} must fail typed, got ok={}",
                result.is_ok()
            );
        }
    }

    // ---- planned mixed placement ----

    /// Deterministic mixed placement over `segments`: replicate roughly
    /// every other segment, seeded so different calls vary the pattern.
    fn mixed_placement(segments: usize, seed: usize) -> Vec<SegmentPlacement> {
        (0..segments)
            .map(|i| {
                if (i + seed) % 2 == 0 {
                    SegmentPlacement::Replicated
                } else {
                    SegmentPlacement::Sharded
                }
            })
            .collect()
    }

    #[test]
    fn planned_placement_answers_match_keyed_and_single_rank() {
        // The tentpole equivalence: under every placement — all
        // sharded, all replicated, mixed — the planned path's answers
        // are bit-identical to the keyed path's (itself pinned to the
        // single-rank engine), batch collectives stay constant, and a
        // replicated segment's fetch traffic is exactly zero.
        let collection = workload();
        for signer in [SignerKind::KMins, SignerKind::Oph] {
            let config = IndexConfig::default()
                .with_signature_len(64)
                .with_threshold(0.4)
                .with_signer(signer);
            let segments = 5usize;
            let writer = segmented_writer(&collection, &config, segments, &[1, 7, 13]);
            let reader = writer.reader();
            let queries: Vec<Vec<u64>> =
                (0..6).map(|i| collection.sample(i * 3).to_vec()).collect();
            for rerank in [false, true] {
                let opts = QueryOptions { top_k: 5, rerank_exact: rerank, ..Default::default() };
                let reference = QueryEngine::snapshot_with_collection(reader.clone(), &collection)
                    .query_batch(&queries, &opts)
                    .unwrap();
                for p in [1usize, 3, 4] {
                    for placements in [
                        vec![SegmentPlacement::Sharded; segments],
                        vec![SegmentPlacement::Replicated; segments],
                        mixed_placement(segments, 0),
                        mixed_placement(segments, 1),
                    ] {
                        let out = Runtime::new(p)
                            .run(|ctx| {
                                let (planned, install) = ctx.expect_ok(
                                    "install",
                                    install_placement(ctx.world(), &reader, &placements, None),
                                );
                                let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                                let (answers, stats) = ctx.expect_ok(
                                    "planned",
                                    dist_query_reader_batch_planned(
                                        ctx.world(),
                                        &reader,
                                        Some(&collection),
                                        q,
                                        &opts,
                                        &planned,
                                    ),
                                );
                                (answers, stats, install)
                            })
                            .unwrap();
                        for (rank, (answers, stats, install)) in out.results.iter().enumerate() {
                            assert_eq!(
                                answers, &reference,
                                "planned diverges (p={p}, rank={rank}, rerank={rerank}, \
                                 {signer}, {placements:?})"
                            );
                            assert_eq!(install.collective_calls, 1);
                            assert_eq!(stats.collective_calls, if rerank { 6 } else { 5 });
                            assert_eq!(stats.per_segment.len(), segments);
                            for (seg_idx, seg) in stats.per_segment.iter().enumerate() {
                                assert_eq!(seg.owned_rows + seg.fetched_rows, seg.candidate_rows);
                                if placements[seg_idx] == SegmentPlacement::Replicated {
                                    assert_eq!(
                                        seg.fetched_rows, 0,
                                        "replicated segment fetched rows over the wire"
                                    );
                                }
                            }
                            // All-replicated serving fetches nothing at all.
                            if placements.iter().all(|&pl| pl == SegmentPlacement::Replicated) {
                                assert_eq!(stats.fetched_rows, 0);
                                assert_eq!(stats.fetch_bytes, 0);
                            }
                            // All-sharded install ships nothing at all.
                            if placements.iter().all(|&pl| pl == SegmentPlacement::Sharded) {
                                assert_eq!(install.install_bytes, 0);
                                assert_eq!(install.installed_rows, 0);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn planned_install_and_batch_bytes_sum_to_the_cost_report_exactly() {
        // The wire-accounting pin for the planned path: install bytes
        // plus every batch's phase bytes equal the simulator's per-rank
        // bytes_received, and the collective counts match the tracker.
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(64).with_threshold(0.4);
        let writer = segmented_writer(&collection, &config, 4, &[2, 9]);
        let reader = writer.reader();
        let queries: Vec<Vec<u64>> = (0..5).map(|i| collection.sample(i * 4).to_vec()).collect();
        let placements = mixed_placement(4, 0);
        for rerank in [false, true] {
            let opts = QueryOptions { top_k: 4, rerank_exact: rerank, ..Default::default() };
            for p in [1usize, 2, 4] {
                let batches = 3usize;
                let out = Runtime::new(p)
                    .run(|ctx| {
                        let (planned, install) = ctx.expect_ok(
                            "install",
                            install_placement(ctx.world(), &reader, &placements, None),
                        );
                        let mut wire = install.install_bytes;
                        let mut collectives = install.collective_calls;
                        for _ in 0..batches {
                            let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                            let (_, stats) = ctx.expect_ok(
                                "planned",
                                dist_query_reader_batch_planned(
                                    ctx.world(),
                                    &reader,
                                    Some(&collection),
                                    q,
                                    &opts,
                                    &planned,
                                ),
                            );
                            wire += stats.wire_bytes();
                            collectives += stats.collective_calls;
                        }
                        (wire, collectives)
                    })
                    .unwrap();
                for (rank, ((wire, collectives), report)) in
                    out.results.iter().zip(&out.reports).enumerate()
                {
                    assert_eq!(
                        *wire as u64, report.bytes_received,
                        "p={p}, rank={rank}, rerank={rerank}: install+batch bytes diverge \
                         from the wire"
                    );
                    assert_eq!(
                        *collectives as u64, report.collectives,
                        "p={p}, rank={rank}, rerank={rerank}: collective count diverges"
                    );
                }
            }
        }
    }

    #[test]
    fn reinstalling_an_overlapping_placement_ships_only_the_delta() {
        // Replicas carry over by segment id: re-planning the identical
        // placement ships zero bytes, and flipping one segment from
        // sharded to replicated pays only that segment's foreign rows —
        // while the collective count stays exactly one either way.
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(32);
        let writer = segmented_writer(&collection, &config, 4, &[]);
        let reader = writer.reader();
        let p = 4usize;
        let initial = mixed_placement(4, 0); // segments 0 and 2 replicated
        let mut widened = initial.clone();
        widened[1] = SegmentPlacement::Replicated;

        let out = Runtime::new(p)
            .run(|ctx| {
                let (planned, first) = ctx
                    .expect_ok("install", install_placement(ctx.world(), &reader, &initial, None));
                let (planned2, again) = ctx.expect_ok(
                    "reinstall",
                    install_placement(ctx.world(), &reader, &initial, Some(&planned)),
                );
                let (_, delta) = ctx.expect_ok(
                    "widen",
                    install_placement(ctx.world(), &reader, &widened, Some(&planned2)),
                );
                (first, again, delta)
            })
            .unwrap();
        let seg1_rows = reader.segments()[1].n_rows();
        for (rank, (first, again, delta)) in out.results.iter().enumerate() {
            assert_eq!(first.replicated_segments, 2);
            assert_eq!(first.reused_segments, 0);
            assert!(first.installed_rows > 0);

            assert_eq!(again.replicated_segments, 2, "rank={rank}");
            assert_eq!(again.reused_segments, 2);
            assert_eq!(again.installed_rows, 0);
            assert_eq!(again.install_bytes, 0, "identical plan must ship nothing");
            assert_eq!(again.collective_calls, 1, "the empty install still synchronizes");

            assert_eq!(delta.replicated_segments, 3);
            assert_eq!(delta.reused_segments, 2);
            assert_eq!(delta.installed_rows, seg1_rows, "only the flipped segment installs");
            assert_eq!(delta.collective_calls, 1);
        }
    }

    #[test]
    fn planned_batch_rejects_a_placement_from_another_snapshot() {
        // Install against a 2-segment snapshot, then serve a batch over
        // a grown 3-segment snapshot of the same writer: a typed error
        // on every rank, before any collective can deadlock the world.
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(16);
        let mut writer = IndexOptions::from_config(config).open_writer().unwrap();
        for i in 0..8 {
            writer.add(format!("s{i}"), collection.sample(i).to_vec()).unwrap();
        }
        writer.commit().unwrap();
        let old_reader = writer.reader();
        for i in 8..12 {
            writer.add(format!("s{i}"), collection.sample(i).to_vec()).unwrap();
        }
        writer.commit().unwrap();
        let new_reader = writer.reader();
        assert_ne!(old_reader.segments().len(), new_reader.segments().len());

        let queries: Vec<Vec<u64>> = vec![collection.sample(0).to_vec()];
        let opts = QueryOptions { top_k: 3, ..Default::default() };
        let out = Runtime::new(3)
            .run(|ctx| {
                let placements = vec![SegmentPlacement::Replicated; old_reader.segments().len()];
                let (planned, _) = ctx.expect_ok(
                    "install",
                    install_placement(ctx.world(), &old_reader, &placements, None),
                );
                let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                dist_query_reader_batch_planned(ctx.world(), &new_reader, None, q, &opts, &planned)
            })
            .unwrap();
        for result in out.results {
            assert!(
                matches!(result, Err(IndexError::InvalidQuery(_))),
                "stale placement must be a typed error"
            );
        }
        // A plan sized for the wrong snapshot is rejected at install.
        let bad = Runtime::new(2)
            .run(|ctx| {
                install_placement(ctx.world(), &new_reader, &[SegmentPlacement::Sharded], None)
                    .map(|_| ())
            })
            .unwrap();
        for result in bad.results {
            assert!(matches!(result, Err(IndexError::InvalidQuery(_))));
        }
    }
}
