//! Distributed query serving: LSH bucket shards across simulated ranks.
//!
//! Bands are assigned to ranks round-robin ([`band_shard`]), so each
//! rank answers queries against `⌈b / p⌉` or `⌊b / p⌋` bucket tables.
//! One batched query round is three collectives:
//!
//! 1. **scatter** — rank 0 signs the query batch and broadcasts the
//!    signatures (every query must visit every band, so the "scatter by
//!    band hash" degenerates to a broadcast of signatures while the
//!    *buckets* stay sharded; raw query values travel only when exact
//!    re-ranking is requested);
//! 2. **probe + score** — each rank probes only the bands of its shard,
//!    scores its candidates in parallel and keeps its local top
//!    (`oversample × k`) per query;
//! 3. **allgather + merge** — the per-rank partial top lists are
//!    allgathered, deduplicated by sample id and merged; every rank then
//!    finalizes (optional exact re-rank, truncate to `k`) identically.
//!
//! Because a candidate surviving to the global top-k necessarily survives
//! the local top list of whichever rank found it, the merged answer is
//! bit-identical to the single-rank engine's — the `query_serving`
//! integration suite pins that for the dist-matrix grid.

use gas_core::indicator::SampleCollection;
use gas_core::minhash::MinHashSignature;
use gas_dstsim::comm::Communicator;

use crate::build::SketchIndex;
use crate::error::{IndexError, IndexResult};
use crate::query::{finalize, lsh_top, scored_less, Neighbor, QueryOptions};

/// The rank owning `band`'s bucket shard in a world of `nranks`:
/// round-robin over the band index. Band *keys* are already uniform
/// splitmix hashes, so round-robin assignment of whole bands is hash
/// sharding with a perfectly balanced placement — and, unlike hashing
/// the band index, it guarantees no rank is left without buckets
/// whenever `bands ≥ nranks` (true for every CI grid: indexes default
/// to ≥ 16 bands, the dist-matrix tops out at 12 ranks).
pub fn band_shard(band: usize, nranks: usize) -> usize {
    band % nranks
}

/// Encode per-query partial top lists as a flat `u64` stream:
/// `[len, (id << 32 | agreement), ...]` per query, in query order.
fn encode_partials(partials: &[Vec<(u32, u32)>]) -> Vec<u64> {
    let mut out = Vec::with_capacity(partials.iter().map(|p| p.len() + 1).sum());
    for per_query in partials {
        out.push(per_query.len() as u64);
        for &(agreement, id) in per_query {
            out.push((id as u64) << 32 | agreement as u64);
        }
    }
    out
}

/// Decode one rank's stream back into per-query `(agreement, id)` lists.
fn decode_partials(stream: &[u64], nqueries: usize) -> IndexResult<Vec<Vec<(u32, u32)>>> {
    let mut out = Vec::with_capacity(nqueries);
    let mut pos = 0usize;
    for q in 0..nqueries {
        let len = *stream.get(pos).ok_or_else(|| IndexError::Corrupt {
            context: format!("partial top-k stream ends before query {q}"),
        })? as usize;
        pos += 1;
        if pos + len > stream.len() {
            return Err(IndexError::Corrupt {
                context: format!("partial top-k stream truncated inside query {q}"),
            });
        }
        out.push(
            stream[pos..pos + len]
                .iter()
                .map(|&w| ((w & 0xFFFF_FFFF) as u32, (w >> 32) as u32))
                .collect(),
        );
        pos += len;
    }
    if pos != stream.len() {
        return Err(IndexError::Corrupt {
            context: format!("{} trailing words in partial top-k stream", stream.len() - pos),
        });
    }
    Ok(out)
}

/// Serve a batch of top-k queries over the band shards of `world`.
///
/// `queries` must be `Some` on rank 0 (the ingress rank) and is ignored
/// elsewhere. Every rank returns the complete, identical answer batch —
/// callers that only need the answer once can read it from any rank.
/// With `opts.rerank_exact` set, `collection` must be provided on every
/// rank (the simulator shares it by reference; a real deployment would
/// shard the exact sets alongside the buckets).
pub fn dist_query_batch(
    world: &Communicator,
    index: &SketchIndex,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<Vec<Vec<Neighbor>>> {
    let p = world.size();
    let me = world.rank();

    // Phase 1: rank 0 validates and signs the query batch. The validity
    // flag is broadcast *first* so that a misuse on the ingress rank
    // (no query batch) surfaces as a typed error on every rank instead
    // of leaving the other ranks blocked in a bcast that never comes.
    let root_ok = world.bcast(0, if me == 0 { Some(queries.is_some() as u8) } else { None })?;
    if root_ok == 0 {
        return Err(IndexError::InvalidQuery("rank 0 must provide the query batch".into()));
    }
    let signed: Option<Vec<Vec<u64>>> = if me == 0 {
        let queries = queries.expect("flag checked above");
        Some(queries.iter().map(|q| index.scheme().sign(q).values().to_vec()).collect())
    } else {
        None
    };
    let signatures: Vec<MinHashSignature> =
        world.bcast(0, signed)?.into_iter().map(MinHashSignature::from_values).collect();
    let raw_queries: Option<Vec<Vec<u64>>> = if opts.rerank_exact {
        let mine = if me == 0 { Some(queries.expect("flag checked above").to_vec()) } else { None };
        Some(world.bcast(0, mine)?)
    } else {
        None
    };

    // Phase 2: probe this rank's band shard and score locally.
    let keep = opts.keep();
    let partials: Vec<Vec<(u32, u32)>> = signatures
        .iter()
        .map(|sig| {
            let candidates = index.candidates_where(sig, |band| band_shard(band, p) == me);
            lsh_top(index, sig, &candidates, keep)
        })
        .collect();

    // Phase 3: allgather the partial top lists and merge deterministically.
    let streams: Vec<Vec<u64>> = world.allgatherv(&encode_partials(&partials))?;
    let nqueries = signatures.len();
    let mut merged: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nqueries];
    for stream in &streams {
        for (q, partial) in decode_partials(stream, nqueries)?.into_iter().enumerate() {
            merged[q].extend(partial);
        }
    }
    let mut answers = Vec::with_capacity(nqueries);
    for (q, mut entries) in merged.into_iter().enumerate() {
        // A candidate can surface on several ranks (one per colliding
        // band); its agreement score is identical everywhere, so dedup by
        // id after sorting with the exact ordering the local engine uses.
        entries.sort_unstable_by(scored_less);
        entries.dedup_by_key(|e| e.1);
        entries.truncate(keep);
        let query_values: &[u64] = match &raw_queries {
            Some(qs) => &qs[q],
            None => &[],
        };
        answers.push(finalize(entries, index.scheme().len(), query_values, collection, opts)?);
    }
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexConfig;
    use crate::query::QueryEngine;
    use gas_dstsim::runtime::Runtime;

    fn workload() -> SampleCollection {
        let mut samples = Vec::new();
        for f in 0..4u64 {
            let core: Vec<u64> = (f * 50_000..f * 50_000 + 500).collect();
            for m in 0..5u64 {
                let mut s = core.clone();
                s.extend(f * 50_000 + 30_000 + m * 25..f * 50_000 + 30_000 + m * 25 + 25);
                samples.push(s);
            }
        }
        SampleCollection::from_sets(samples).unwrap()
    }

    #[test]
    fn band_shard_is_balanced_whenever_bands_cover_ranks() {
        // Probing is only distributed if every rank owns some band, and
        // balanced if ownership counts differ by at most one.
        for p in [2usize, 4, 6, 8, 12] {
            for bands in [16usize, 32, 64] {
                let mut owners = vec![0usize; p];
                for band in 0..bands {
                    let s = band_shard(band, p);
                    assert!(s < p);
                    owners[s] += 1;
                }
                let (lo, hi) = (owners.iter().min().unwrap(), owners.iter().max().unwrap());
                assert!(*lo > 0, "idle rank for p={p}, bands={bands}: {owners:?}");
                assert!(hi - lo <= 1, "imbalance for p={p}, bands={bands}: {owners:?}");
            }
        }
    }

    #[test]
    fn partial_stream_round_trips_and_rejects_garbage() {
        let partials = vec![vec![(192u32, 3u32), (10, 7)], vec![], vec![(1, 1)]];
        let stream = encode_partials(&partials);
        let back = decode_partials(&stream, 3).unwrap();
        assert_eq!(back, partials);
        assert!(decode_partials(&stream[..stream.len() - 1], 3).is_err());
        assert!(decode_partials(&stream, 4).is_err());
        assert!(decode_partials(&stream, 2).is_err());
        assert!(decode_partials(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn distributed_answers_equal_single_rank_answers() {
        let collection = workload();
        let config = IndexConfig::default().with_signature_len(128).with_threshold(0.4);
        let index = SketchIndex::build(&collection, &config).unwrap();
        let queries: Vec<Vec<u64>> = (0..6).map(|i| collection.sample(i * 3).to_vec()).collect();

        for rerank in [false, true] {
            let opts = QueryOptions { top_k: 5, rerank_exact: rerank, ..Default::default() };
            let engine = QueryEngine::with_collection(&index, &collection);
            let reference = engine.query_batch(&queries, &opts).unwrap();

            for p in [1usize, 3, 5] {
                let out = Runtime::new(p)
                    .run(|ctx| {
                        let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                        ctx.expect_ok(
                            "dist_query_batch",
                            dist_query_batch(ctx.world(), &index, Some(&collection), q, &opts),
                        )
                    })
                    .unwrap();
                for (rank, answers) in out.results.iter().enumerate() {
                    assert_eq!(
                        answers, &reference,
                        "p={p}, rank={rank}, rerank={rerank}: distributed answers diverge"
                    );
                }
            }
        }
    }

    #[test]
    fn missing_queries_on_root_errors_on_every_rank_without_hanging() {
        // Every rank calls the collective; rank 0 has no query batch. The
        // validity pre-broadcast must turn that into a typed error on all
        // ranks instead of deadlocking ranks 1..p in the signature bcast.
        let index = SketchIndex::build(
            &SampleCollection::from_sorted_sets(vec![vec![1, 2, 3]]).unwrap(),
            &IndexConfig::default().with_signature_len(16),
        )
        .unwrap();
        let out = Runtime::new(3)
            .run(|ctx| dist_query_batch(ctx.world(), &index, None, None, &QueryOptions::default()))
            .unwrap();
        for result in out.results {
            assert!(matches!(result, Err(IndexError::InvalidQuery(_))), "expected typed error");
        }
    }
}
