//! Distributed query serving: LSH bucket shards *and* signature shards
//! across simulated ranks, applied **per segment** of a lifecycle
//! snapshot (a monolithic `SketchIndex` is served as the one-segment
//! special case).
//!
//! Two orthogonal shardings keep per-rank state at `~1/p` of the index:
//!
//! * **bands** are assigned to ranks round-robin ([`band_shard`]), so
//!   each rank probes `⌈b / p⌉` or `⌊b / p⌋` bucket tables;
//! * **signature rows** are assigned to ranks round-robin by sample id
//!   ([`sample_shard`]), so each rank *stores* `~n/p` rows of the
//!   signature matrix ([`SignatureShard`]) instead of replicating all
//!   `n · len · 8` bytes — the dominant memory term of a sketch index.
//!
//! One batched query round is five collectives:
//!
//! 1. **scatter** — rank 0 signs the query batch and broadcasts the
//!    signatures (every query must visit every band, so the "scatter by
//!    band hash" degenerates to a broadcast of signatures while the
//!    *buckets* stay sharded; raw query values travel only when exact
//!    re-ranking is requested);
//! 2. **probe** — each rank probes only the bands of its shard, which
//!    yields the candidate ids its scoring pass will touch;
//! 3. **request** — ranks allgather the candidate ids they need but do
//!    not own (deduplicated), so every owner learns which of its rows
//!    are wanted this round;
//! 4. **fetch** — each owner contributes each requested row *once* to an
//!    allgather, regardless of how many ranks or queries want it; the
//!    collective then delivers every contribution to every rank (the
//!    allgather's fan-out — [`DistQueryStats::received_bytes`] records
//!    that transient cost honestly), and each rank keeps only the rows
//!    it asked for; scoring then reads rows from the local shard or the
//!    fetched set — never from a replicated matrix;
//! 5. **allgather + merge** — the per-rank partial top lists are
//!    allgathered, deduplicated by sample id and merged; every rank then
//!    finalizes (optional exact re-rank, truncate to `k`) identically.
//!
//! A candidate surviving to the global top-k necessarily survives the
//! local top list of whichever rank found it, and every scored row is
//! byte-identical to the single-rank engine's, so the merged answer is
//! bit-identical to the single-rank engine's — the `query_serving`
//! integration suite pins that for the dist-matrix grid.

use gas_core::indicator::SampleCollection;
use gas_core::minhash::{signature_agreement, MinHashSignature};
use gas_dstsim::comm::Communicator;

use crate::build::SketchIndex;
use crate::error::{IndexError, IndexResult};
use crate::lifecycle::IndexReader;
use crate::query::{
    finalize, live_segment_candidates, lsh_top_by, merge_scored_sources, Neighbor, QueryOptions,
};
use crate::segment::Segment;

/// The rank owning `band`'s bucket shard in a world of `nranks`:
/// round-robin over the band index. Band *keys* are already uniform
/// splitmix hashes, so round-robin assignment of whole bands is hash
/// sharding with a perfectly balanced placement — and, unlike hashing
/// the band index, it guarantees no rank is left without buckets
/// whenever `bands ≥ nranks` (true for every CI grid: indexes default
/// to ≥ 16 bands, the dist-matrix tops out at 12 ranks).
pub fn band_shard(band: usize, nranks: usize) -> usize {
    band % nranks
}

/// The rank owning sample `id`'s signature row: round-robin over the
/// sample id, so every rank stores `⌈n / p⌉` or `⌊n / p⌋` rows and
/// consecutive ids (which family-structured datasets cluster) spread
/// across ranks instead of hot-spotting one.
pub fn sample_shard(id: usize, nranks: usize) -> usize {
    id % nranks
}

/// One rank's slice of a *segment's* signature matrix: the rows of the
/// local rows it owns under [`sample_shard`], flattened `len` words per
/// row in ascending local-row order. Sharding is per segment — every
/// sealed segment's rows spread round-robin over all ranks
/// independently, so the balance property holds for each segment (and
/// therefore for their union) no matter how commits and compactions
/// sliced the corpus. For a single-segment index local rows *are* the
/// sample ids, which is exactly the pre-lifecycle behavior.
///
/// In the simulator every rank could reach the whole index by reference;
/// materializing the shard keeps the memory accounting honest (a real
/// deployment loads only its shard from the container) and forces the
/// scoring path through the shard-or-fetched lookup that a real
/// deployment would use.
#[derive(Debug, Clone)]
pub struct SignatureShard {
    rank: usize,
    nranks: usize,
    len: usize,
    rows: Vec<u64>,
}

impl SignatureShard {
    /// Extract rank `rank`'s shard of `index`'s signature matrix (the
    /// single-segment convenience form of [`Self::for_segment`]).
    pub fn build(index: &SketchIndex, rank: usize, nranks: usize) -> Self {
        SignatureShard::for_segment(index.segment(), rank, nranks)
    }

    /// Extract rank `rank`'s shard of one sealed segment's signature
    /// matrix.
    pub fn for_segment(segment: &Segment, rank: usize, nranks: usize) -> Self {
        let len = segment.scheme().len();
        let n = segment.n_rows();
        let mut rows = Vec::with_capacity(n.div_ceil(nranks.max(1)) * len);
        let mut local = rank;
        while local < n {
            rows.extend_from_slice(segment.signature(local).values());
            local += nranks;
        }
        SignatureShard { rank, nranks, len, rows }
    }

    /// Whether this shard owns local row `id`.
    pub fn owns(&self, id: u32) -> bool {
        sample_shard(id as usize, self.nranks) == self.rank
    }

    /// The signature row of owned local row `id`.
    ///
    /// Panics if the shard does not own `id` (callers route non-owned
    /// rows through the fetched-row set).
    pub fn row(&self, id: u32) -> &[u64] {
        assert!(self.owns(id), "rank {} does not own row {id}", self.rank);
        let slot = (id as usize - self.rank) / self.nranks;
        &self.rows[slot * self.len..(slot + 1) * self.len]
    }

    /// Number of signature rows stored by this shard.
    pub fn n_rows(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        self.rows.len() / self.len
    }

    /// Bytes of signature data stored by this shard.
    pub fn bytes(&self) -> usize {
        self.rows.len() * 8
    }
}

/// Memory and traffic accounting of one sharded query round, per rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistQueryStats {
    /// Signature rows this rank stores (its shard).
    pub shard_rows: usize,
    /// Bytes of signature data this rank stores.
    pub shard_bytes: usize,
    /// Distinct non-owned rows this rank's probes needed this round.
    pub fetched_rows: usize,
    /// Bytes of those fetched rows (transient working set, freed after
    /// the batch).
    pub fetched_bytes: usize,
    /// Rows delivered to this rank by the fetch allgather before
    /// filtering — the collective fans every owner's contribution out to
    /// all ranks, so this is the true transient receive-buffer size
    /// (≥ `fetched_rows`; a point-to-point exchange would shrink it to
    /// exactly `fetched_rows`).
    pub received_rows: usize,
    /// Bytes of those delivered rows, ids included.
    pub received_bytes: usize,
    /// What replicating the whole signature matrix on this rank would
    /// cost — the pre-sharding baseline the shard is measured against.
    pub replicated_bytes: usize,
}

/// Encode per-query partial top lists as a flat `u64` stream:
/// `[len, (id << 32 | agreement), ...]` per query, in query order.
fn encode_partials(partials: &[Vec<(u32, u32)>]) -> Vec<u64> {
    let mut out = Vec::with_capacity(partials.iter().map(|p| p.len() + 1).sum());
    for per_query in partials {
        out.push(per_query.len() as u64);
        for &(agreement, id) in per_query {
            out.push((id as u64) << 32 | agreement as u64);
        }
    }
    out
}

/// Decode one rank's stream back into per-query `(agreement, id)` lists.
fn decode_partials(stream: &[u64], nqueries: usize) -> IndexResult<Vec<Vec<(u32, u32)>>> {
    let mut out = Vec::with_capacity(nqueries);
    let mut pos = 0usize;
    for q in 0..nqueries {
        let len = *stream.get(pos).ok_or_else(|| IndexError::Corrupt {
            context: format!("partial top-k stream ends before query {q}"),
        })? as usize;
        pos += 1;
        if pos + len > stream.len() {
            return Err(IndexError::Corrupt {
                context: format!("partial top-k stream truncated inside query {q}"),
            });
        }
        out.push(
            stream[pos..pos + len]
                .iter()
                .map(|&w| ((w & 0xFFFF_FFFF) as u32, (w >> 32) as u32))
                .collect(),
        );
        pos += len;
    }
    if pos != stream.len() {
        return Err(IndexError::Corrupt {
            context: format!("{} trailing words in partial top-k stream", stream.len() - pos),
        });
    }
    Ok(out)
}

/// The signature rows fetched from remote shards for one batch: row ids
/// (sorted, deduplicated) parallel to `len`-word rows in one flat buffer,
/// plus the count of rows the allgather delivered before filtering.
struct FetchedRows {
    ids: Vec<u32>,
    rows: Vec<u64>,
    len: usize,
    received_rows: usize,
}

impl FetchedRows {
    fn row(&self, id: u32) -> Option<&[u64]> {
        self.ids
            .binary_search(&id)
            .ok()
            .map(|slot| &self.rows[slot * self.len..(slot + 1) * self.len])
    }
}

/// Exchange signature rows so this rank can score every candidate its
/// band shard surfaced: allgather the deduplicated request lists, then
/// allgather each owner's requested rows. Each owner *contributes* each
/// requested row once, but the allgather delivers every contribution to
/// all ranks — `FetchedRows::received_rows` records that fan-out so the
/// stats never understate the transient receive buffer.
fn exchange_signature_rows(
    world: &Communicator,
    shard: &SignatureShard,
    wanted: &[u32],
    n_rows: usize,
) -> IndexResult<FetchedRows> {
    let len = shard.len;
    let requests: Vec<u64> = wanted.iter().map(|&id| id as u64).collect();
    let all_requests: Vec<Vec<u64>> = world.allgatherv(&requests)?;

    // Rows this rank must ship: the union of everyone's requests that it
    // owns, deduplicated so a row wanted by several ranks (or several
    // queries) is still shipped exactly once.
    let mut to_ship: Vec<u32> =
        all_requests.iter().flatten().map(|&w| w as u32).filter(|&id| shard.owns(id)).collect();
    to_ship.sort_unstable();
    to_ship.dedup();

    let mut payload = Vec::with_capacity(to_ship.len() * (len + 1));
    for &id in &to_ship {
        payload.push(id as u64);
        payload.extend_from_slice(shard.row(id));
    }
    let shipped: Vec<Vec<u64>> = world.allgatherv(&payload)?;

    // Keep only the rows this rank asked for (allgather also delivers
    // rows other ranks requested); owners are disjoint, so ids across
    // streams never collide.
    let mut fetched: Vec<(u32, usize, usize)> = Vec::with_capacity(wanted.len());
    let mut received_rows = 0usize;
    for (rank, stream) in shipped.iter().enumerate() {
        if stream.len() % (len + 1) != 0 {
            return Err(IndexError::Corrupt {
                context: format!(
                    "signature-row stream from rank {rank} is {} words, not a multiple of {}",
                    stream.len(),
                    len + 1
                ),
            });
        }
        received_rows += stream.len() / (len + 1);
        for slot in 0..stream.len() / (len + 1) {
            let base = slot * (len + 1);
            let id = stream[base] as u32;
            if id as usize >= n_rows {
                return Err(IndexError::Corrupt {
                    context: format!("fetched signature row id {id} out of range"),
                });
            }
            if wanted.binary_search(&id).is_ok() {
                fetched.push((id, rank, base + 1));
            }
        }
    }
    fetched.sort_unstable_by_key(|&(id, _, _)| id);
    let mut ids = Vec::with_capacity(fetched.len());
    let mut rows = Vec::with_capacity(fetched.len() * len);
    for (id, rank, start) in fetched {
        ids.push(id);
        rows.extend_from_slice(&shipped[rank][start..start + len]);
    }
    let out = FetchedRows { ids, rows, len, received_rows };
    // Every row this rank requested must have arrived (its unique owner
    // shipped it); a hole means the shard map diverged across ranks.
    if let Some(&missing) = wanted.iter().find(|&&id| out.row(id).is_none()) {
        return Err(IndexError::Corrupt {
            context: format!("owner never shipped requested signature row {missing}"),
        });
    }
    Ok(out)
}

/// Serve a batch of top-k queries over a lifecycle snapshot, band- and
/// signature-sharded across the ranks of `world`, returning each rank's
/// answers plus its sharding stats.
///
/// Sharding is **per segment**: every sealed segment's bands and
/// signature rows are distributed round-robin independently, so each
/// rank holds `~rows/p` of every segment (and therefore of the whole
/// snapshot) and the probe → request → fetch → score loop runs once per
/// segment. Tombstoned rows are filtered at probe time on every rank
/// identically. The per-rank, per-segment partial top lists are merged
/// with the same deterministic rule as the local engine
/// ([`merge_scored_sources`]), so answers are bit-identical to the
/// single-rank multi-segment reader — and hence to a fresh monolithic
/// build over the snapshot's live corpus.
///
/// `queries` must be `Some` on rank 0 (the ingress rank) and is ignored
/// elsewhere. Every rank returns the complete, identical answer batch —
/// callers that only need the answer once can read it from any rank.
/// With `opts.rerank_exact` set, `collection` must be provided on every
/// rank, indexed by global sample id (the simulator shares it by
/// reference; a real deployment would shard the exact sets alongside
/// the buckets).
pub fn dist_query_reader_batch_stats(
    world: &Communicator,
    reader: &IndexReader,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<(Vec<Vec<Neighbor>>, DistQueryStats)> {
    let p = world.size();
    let me = world.rank();
    let len = reader.scheme().len();

    // Phase 1: rank 0 validates and signs the query batch. The validity
    // flag is broadcast *first* so that a misuse on the ingress rank
    // (no query batch) surfaces as a typed error on every rank instead
    // of leaving the other ranks blocked in a bcast that never comes.
    let root_ok = world.bcast(0, if me == 0 { Some(queries.is_some() as u8) } else { None })?;
    if root_ok == 0 {
        return Err(IndexError::InvalidQuery("rank 0 must provide the query batch".into()));
    }
    let signed: Option<Vec<Vec<u64>>> = if me == 0 {
        let queries = queries.expect("flag checked above");
        Some(queries.iter().map(|q| reader.scheme().sign(q).values().to_vec()).collect())
    } else {
        None
    };
    let signatures: Vec<MinHashSignature> =
        world.bcast(0, signed)?.into_iter().map(MinHashSignature::from_values).collect();
    let raw_queries: Option<Vec<Vec<u64>>> = if opts.rerank_exact {
        let mine = if me == 0 { Some(queries.expect("flag checked above").to_vec()) } else { None };
        Some(world.bcast(0, mine)?)
    } else {
        None
    };

    let keep = opts.keep();
    let nqueries = signatures.len();
    let mut per_query_entries: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nqueries];
    let mut stats =
        DistQueryStats { replicated_bytes: reader.n_rows() * len * 8, ..Default::default() };

    // Phases 2–4, once per segment: probe this rank's band shard of the
    // segment (skipping tombstoned rows), fetch the non-owned signature
    // rows those candidates touch, and score locally — rows come from
    // the segment shard or the fetched set, never from a replicated
    // matrix.
    for seg in reader.segments() {
        let shard = SignatureShard::for_segment(seg, me, p);
        let per_query_candidates: Vec<Vec<u32>> = signatures
            .iter()
            .map(|sig| live_segment_candidates(reader, seg, sig, |band| band_shard(band, p) == me))
            .collect();
        let mut wanted: Vec<u32> = per_query_candidates
            .iter()
            .flatten()
            .copied()
            .filter(|&local| !shard.owns(local))
            .collect();
        wanted.sort_unstable();
        wanted.dedup();
        let fetched = exchange_signature_rows(world, &shard, &wanted, seg.n_rows())?;

        for (q, (sig, candidates)) in signatures.iter().zip(&per_query_candidates).enumerate() {
            let score_of = |local: u32| -> u32 {
                let row = if shard.owns(local) {
                    shard.row(local)
                } else {
                    fetched.row(local).expect("validated by exchange_signature_rows")
                };
                signature_agreement(sig.values(), row) as u32
            };
            per_query_entries[q].extend(
                lsh_top_by(&score_of, candidates, keep)
                    .into_iter()
                    .map(|(a, local)| (a, seg.global_id(local as usize))),
            );
        }

        stats.shard_rows += shard.n_rows();
        stats.shard_bytes += shard.bytes();
        stats.fetched_rows += fetched.ids.len();
        stats.fetched_bytes += fetched.rows.len() * 8;
        stats.received_rows += fetched.received_rows;
        stats.received_bytes += fetched.received_rows * (len + 1) * 8;
    }

    // Local cross-segment merge, so the wire carries at most `keep`
    // entries per query per rank no matter how many segments exist.
    let partials: Vec<Vec<(u32, u32)>> =
        per_query_entries.into_iter().map(|entries| merge_scored_sources(entries, keep)).collect();

    // Phase 5: allgather the partial top lists and merge with the same
    // deterministic rule the local engine uses — one entry per sample id
    // (a candidate can surface on several ranks, one per colliding
    // band), ties ordered by lowest id.
    let streams: Vec<Vec<u64>> = world.allgatherv(&encode_partials(&partials))?;
    let mut merged: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nqueries];
    for stream in &streams {
        for (q, partial) in decode_partials(stream, nqueries)?.into_iter().enumerate() {
            merged[q].extend(partial);
        }
    }
    let mut answers = Vec::with_capacity(nqueries);
    for (q, entries) in merged.into_iter().enumerate() {
        let entries = merge_scored_sources(entries, keep);
        let query_values: &[u64] = match &raw_queries {
            Some(qs) => &qs[q],
            None => &[],
        };
        answers.push(finalize(entries, len, query_values, collection, opts)?);
    }
    Ok((answers, stats))
}

/// Serve a batch of top-k queries over a lifecycle snapshot (the
/// stats-free form of [`dist_query_reader_batch_stats`]).
pub fn dist_query_reader_batch(
    world: &Communicator,
    reader: &IndexReader,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<Vec<Vec<Neighbor>>> {
    dist_query_reader_batch_stats(world, reader, collection, queries, opts)
        .map(|(answers, _)| answers)
}

/// Serve a batch of top-k queries over the band and signature shards of
/// `world` for a monolithic index (the single-segment convenience form
/// of [`dist_query_reader_batch_stats`]).
pub fn dist_query_batch_stats(
    world: &Communicator,
    index: &SketchIndex,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<(Vec<Vec<Neighbor>>, DistQueryStats)> {
    dist_query_reader_batch_stats(world, &index.as_reader(), collection, queries, opts)
}

/// Serve a batch of top-k queries over the shards of `world` (the
/// stats-free form of [`dist_query_batch_stats`]).
pub fn dist_query_batch(
    world: &Communicator,
    index: &SketchIndex,
    collection: Option<&SampleCollection>,
    queries: Option<&[Vec<u64>]>,
    opts: &QueryOptions,
) -> IndexResult<Vec<Vec<Neighbor>>> {
    dist_query_batch_stats(world, index, collection, queries, opts).map(|(answers, _)| answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexConfig;
    use crate::query::QueryEngine;
    use gas_core::minhash::SignerKind;
    use gas_dstsim::runtime::Runtime;

    fn workload() -> SampleCollection {
        let mut samples = Vec::new();
        for f in 0..4u64 {
            let core: Vec<u64> = (f * 50_000..f * 50_000 + 500).collect();
            for m in 0..5u64 {
                let mut s = core.clone();
                s.extend(f * 50_000 + 30_000 + m * 25..f * 50_000 + 30_000 + m * 25 + 25);
                samples.push(s);
            }
        }
        SampleCollection::from_sets(samples).unwrap()
    }

    #[test]
    fn band_shard_is_balanced_whenever_bands_cover_ranks() {
        // Probing is only distributed if every rank owns some band, and
        // balanced if ownership counts differ by at most one.
        for p in [2usize, 4, 6, 8, 12] {
            for bands in [16usize, 32, 64] {
                let mut owners = vec![0usize; p];
                for band in 0..bands {
                    let s = band_shard(band, p);
                    assert!(s < p);
                    owners[s] += 1;
                }
                let (lo, hi) = (owners.iter().min().unwrap(), owners.iter().max().unwrap());
                assert!(*lo > 0, "idle rank for p={p}, bands={bands}: {owners:?}");
                assert!(hi - lo <= 1, "imbalance for p={p}, bands={bands}: {owners:?}");
            }
        }
    }

    #[test]
    fn partial_stream_round_trips_and_rejects_garbage() {
        let partials = vec![vec![(192u32, 3u32), (10, 7)], vec![], vec![(1, 1)]];
        let stream = encode_partials(&partials);
        let back = decode_partials(&stream, 3).unwrap();
        assert_eq!(back, partials);
        assert!(decode_partials(&stream[..stream.len() - 1], 3).is_err());
        assert!(decode_partials(&stream, 4).is_err());
        assert!(decode_partials(&stream, 2).is_err());
        assert!(decode_partials(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn signature_shards_partition_the_matrix() {
        let collection = workload();
        let index = SketchIndex::build(&collection, &IndexConfig::default().with_signature_len(64))
            .unwrap();
        for p in [1usize, 3, 4, 7] {
            let shards: Vec<SignatureShard> =
                (0..p).map(|r| SignatureShard::build(&index, r, p)).collect();
            // Every row is owned by exactly one shard and round-trips.
            let total: usize = shards.iter().map(SignatureShard::n_rows).sum();
            assert_eq!(total, index.n(), "p={p}");
            for id in 0..index.n() as u32 {
                let owner = sample_shard(id as usize, p);
                assert!(shards[owner].owns(id));
                assert_eq!(shards[owner].row(id), index.signature(id as usize).values());
                for (r, shard) in shards.iter().enumerate() {
                    assert_eq!(shard.owns(id), r == owner);
                }
            }
            // Balanced to within one row; bytes match the row count.
            let (lo, hi) = (
                shards.iter().map(SignatureShard::n_rows).min().unwrap(),
                shards.iter().map(SignatureShard::n_rows).max().unwrap(),
            );
            assert!(hi - lo <= 1, "p={p}: shard rows {lo}..{hi}");
            for shard in &shards {
                assert_eq!(shard.bytes(), shard.n_rows() * 64 * 8);
            }
        }
    }

    #[test]
    #[should_panic]
    fn signature_shard_row_panics_on_foreign_ids() {
        let collection = workload();
        let index = SketchIndex::build(&collection, &IndexConfig::default().with_signature_len(16))
            .unwrap();
        let shard = SignatureShard::build(&index, 0, 2);
        let _ = shard.row(1); // owned by rank 1
    }

    #[test]
    fn distributed_answers_equal_single_rank_answers() {
        let collection = workload();
        for signer in [SignerKind::KMins, SignerKind::Oph] {
            let config = IndexConfig::default()
                .with_signature_len(128)
                .with_threshold(0.4)
                .with_signer(signer);
            let index = SketchIndex::build(&collection, &config).unwrap();
            let queries: Vec<Vec<u64>> =
                (0..6).map(|i| collection.sample(i * 3).to_vec()).collect();

            for rerank in [false, true] {
                let opts = QueryOptions { top_k: 5, rerank_exact: rerank, ..Default::default() };
                let engine = QueryEngine::with_collection(&index, &collection);
                let reference = engine.query_batch(&queries, &opts).unwrap();

                for p in [1usize, 3, 5] {
                    let out = Runtime::new(p)
                        .run(|ctx| {
                            let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                            ctx.expect_ok(
                                "dist_query_batch_stats",
                                dist_query_batch_stats(
                                    ctx.world(),
                                    &index,
                                    Some(&collection),
                                    q,
                                    &opts,
                                ),
                            )
                        })
                        .unwrap();
                    for (rank, (answers, stats)) in out.results.iter().enumerate() {
                        assert_eq!(
                            answers, &reference,
                            "p={p}, rank={rank}, rerank={rerank}, signer={signer}: \
                             distributed answers diverge"
                        );
                        // The shard holds ~n/p rows, never the full matrix
                        // (beyond p = 1), and fetched rows stay within the
                        // non-owned population.
                        assert_eq!(stats.replicated_bytes, index.n() * 128 * 8);
                        assert!(stats.shard_rows <= index.n().div_ceil(p));
                        assert_eq!(stats.shard_bytes, stats.shard_rows * 128 * 8);
                        assert!(stats.fetched_rows <= index.n() - stats.shard_rows);
                        assert_eq!(stats.fetched_bytes, stats.fetched_rows * 128 * 8);
                        // The allgather fan-out is recorded, not hidden:
                        // the receive buffer is at least the kept rows.
                        assert!(stats.received_rows >= stats.fetched_rows);
                        assert_eq!(stats.received_bytes, stats.received_rows * (128 + 1) * 8);
                        if p > 1 {
                            assert!(
                                stats.shard_bytes * 2 < stats.replicated_bytes,
                                "p={p}: shard {} vs replicated {}",
                                stats.shard_bytes,
                                stats.replicated_bytes
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn missing_queries_on_root_errors_on_every_rank_without_hanging() {
        // Every rank calls the collective; rank 0 has no query batch. The
        // validity pre-broadcast must turn that into a typed error on all
        // ranks instead of deadlocking ranks 1..p in the signature bcast.
        let index = SketchIndex::build(
            &SampleCollection::from_sorted_sets(vec![vec![1, 2, 3]]).unwrap(),
            &IndexConfig::default().with_signature_len(16),
        )
        .unwrap();
        let out = Runtime::new(3)
            .run(|ctx| dist_query_batch(ctx.world(), &index, None, None, &QueryOptions::default()))
            .unwrap();
        for result in out.results {
            assert!(matches!(result, Err(IndexError::InvalidQuery(_))), "expected typed error");
        }
    }
}
