//! The `gas-index` container: a self-describing, versioned, checksummed
//! binary file format.
//!
//! The vendored serde is a no-op stub, so persistence is hand-rolled: a
//! fixed header, a section table and little-endian pod payloads. The
//! layout of version 1 is:
//!
//! ```text
//! [0..8)    magic       b"GASIDX01"
//! [8..12)   version     u32 LE (currently 1)
//! [12..16)  sections    u32 LE — number of section-table entries
//! [16..24)  total_len   u64 LE — byte length of the whole file
//! [24..)    table       sections × 32 bytes:
//!               tag [u8; 8] | offset u64 | len u64 | fnv1a64(payload)
//! [..+8)    table_crc   u64 LE — fnv1a64 of everything above
//! [...]     payloads    section byte ranges, non-overlapping
//! ```
//!
//! Readers validate magic, version, declared length against the real
//! length (catching truncation), the header/table checksum and every
//! section checksum before any payload byte is interpreted, and then
//! decode sections through a bounds-checked [`PodReader`] — corrupt input
//! produces a typed [`IndexError`], never a panic or a wild slice. The
//! whole file is read once into memory and sections are borrowed slices
//! of that buffer (a zero-copy-style reader: no per-element allocation
//! until typed vectors are materialized).

use std::path::Path;

use gas_core::minhash::{MinHashSignature, SignatureScheme, SignerKind};

use crate::build::{BandBuckets, SketchIndex};
use crate::error::{IndexError, IndexResult};
use crate::params::LshParams;

/// Container magic: "GASIDX" plus the two-digit format generation (the
/// file *family*; incompatible layout revisions bump the version field,
/// not the magic).
pub const MAGIC: [u8; 8] = *b"GASIDX01";

/// Current *single-index* container format version (the section-table
/// layout this module's `Container`/`ContainerWriter` read and write).
/// Version 2 added the `SGNR` section recording which signer produced
/// the signatures; version-1 files (no `SGNR`) predate one-permutation
/// hashing and decode as k-mins. Version 3 is the *segmented* layout
/// ([`VERSION_SEGMENTED`]): a block stream, not a section table, read
/// through the lifecycle openers (`IndexReader::open` /
/// `IndexWriter::open`) rather than through [`Container::parse`].
pub const VERSION: u32 = 2;

/// The segmented (multi-segment, append-only) container format version:
/// a 20-byte checksummed header followed by a stream of checksummed
/// blocks — immutable segment blocks and generation-numbered manifest
/// blocks, the manifest of each commit written *last*. Readers take the
/// newest manifest whose own bytes and every referenced segment check
/// out; anything after it (a torn commit) is ignored, so a crash or
/// truncation mid-commit falls back to the previous generation.
pub const VERSION_SEGMENTED: u32 = 3;

const HEADER_LEN: usize = 24;
const TABLE_ENTRY_LEN: usize = 32;

/// Section holding index-wide metadata (scheme, banding, names, sizes).
pub const SECTION_META: [u8; 8] = *b"META\0\0\0\0";
/// Section holding the flattened signature matrix.
pub const SECTION_SIGS: [u8; 8] = *b"SIGS\0\0\0\0";
/// Section holding every band's flattened bucket table.
pub const SECTION_BUCK: [u8; 8] = *b"BUCK\0\0\0\0";
/// Section describing the signer (since version 2): section layout
/// version, signer-kind code, signature length and seed — the last two
/// repeated from `META` so the signer record is self-contained and
/// cross-checked on read.
pub const SECTION_SGNR: [u8; 8] = *b"SGNR\0\0\0\0";

/// Layout version of the `SGNR` section payload.
const SGNR_LAYOUT: u32 = 1;

/// FNV-1a 64-bit checksum (the container's integrity hash: simple,
/// dependency-free and byte-order independent).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Incrementally builds a container from tagged sections.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    sections: Vec<([u8; 8], Vec<u8>)>,
}

impl ContainerWriter {
    /// An empty container.
    pub fn new() -> Self {
        ContainerWriter::default()
    }

    /// Append a section (order is preserved in the file).
    pub fn add_section(&mut self, tag: [u8; 8], payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Serialize header, table and payloads into one byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_len = self.sections.len() * TABLE_ENTRY_LEN;
        let payload_base = HEADER_LEN + table_len + 8;
        let total_len = payload_base + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&(total_len as u64).to_le_bytes());
        let mut offset = payload_base;
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
            offset += payload.len();
        }
        let table_crc = fnv1a64(&out);
        out.extend_from_slice(&table_crc.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len(), total_len);
        out
    }

    /// Write the container to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> IndexResult<()> {
        self.write_to_with(&gas_chaos::RealFs, path)
    }

    /// [`Self::write_to`] through an explicit [`gas_chaos::Storage`]
    /// (fault-injection drills).
    pub fn write_to_with(
        &self,
        storage: &dyn gas_chaos::Storage,
        path: impl AsRef<Path>,
    ) -> IndexResult<()> {
        storage.write(path.as_ref(), &self.to_bytes())?;
        Ok(())
    }
}

/// A parsed container: the raw bytes plus the validated section table.
/// Section accessors return borrowed slices of the single file buffer.
#[derive(Debug)]
pub struct Container {
    bytes: Vec<u8>,
    version: u32,
    sections: Vec<([u8; 8], std::ops::Range<usize>)>,
}

impl Container {
    /// Read and validate a container file.
    pub fn open(path: impl AsRef<Path>) -> IndexResult<Self> {
        Container::open_with(&gas_chaos::RealFs, path)
    }

    /// [`Self::open`] through an explicit [`gas_chaos::Storage`]
    /// (fault-injection drills).
    pub fn open_with(
        storage: &dyn gas_chaos::Storage,
        path: impl AsRef<Path>,
    ) -> IndexResult<Self> {
        Container::parse(storage.read(path.as_ref())?)
    }

    /// Validate a container from an in-memory byte buffer.
    pub fn parse(bytes: Vec<u8>) -> IndexResult<Self> {
        if bytes.len() < HEADER_LEN + 8 {
            return Err(IndexError::Truncated { context: "header".into() });
        }
        if bytes[0..8] != MAGIC {
            return Err(IndexError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if !(1..=VERSION).contains(&version) {
            return Err(IndexError::UnsupportedVersion(version));
        }
        let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let total_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if total_len != bytes.len() as u64 {
            return Err(IndexError::Truncated {
                context: format!("file is {} bytes but declares {total_len}", bytes.len()),
            });
        }
        let table_end = HEADER_LEN + section_count * TABLE_ENTRY_LEN;
        if bytes.len() < table_end + 8 {
            return Err(IndexError::Truncated { context: "section table".into() });
        }
        let stored_crc = u64::from_le_bytes(bytes[table_end..table_end + 8].try_into().unwrap());
        if fnv1a64(&bytes[..table_end]) != stored_crc {
            return Err(IndexError::ChecksumMismatch { section: "header".into() });
        }
        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let tag: [u8; 8] = bytes[e..e + 8].try_into().unwrap();
            let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
            let crc = u64::from_le_bytes(bytes[e + 24..e + 32].try_into().unwrap());
            let end = offset.checked_add(len).ok_or_else(|| IndexError::Corrupt {
                context: format!("section {} range overflows", tag_name(&tag)),
            })?;
            if offset < table_end + 8 || end > bytes.len() {
                return Err(IndexError::Truncated {
                    context: format!("section {} payload", tag_name(&tag)),
                });
            }
            if fnv1a64(&bytes[offset..end]) != crc {
                return Err(IndexError::ChecksumMismatch { section: tag_name(&tag) });
            }
            sections.push((tag, offset..end));
        }
        Ok(Container { bytes, version, sections })
    }

    /// The declared format version of this container.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The payload of the section tagged `tag`.
    pub fn section(&self, tag: [u8; 8]) -> IndexResult<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, range)| &self.bytes[range.clone()])
            .ok_or_else(|| IndexError::MissingSection(tag_name(&tag)))
    }

    /// Tags present, in file order.
    pub fn tags(&self) -> Vec<String> {
        self.sections.iter().map(|(t, _)| tag_name(t)).collect()
    }
}

fn tag_name(tag: &[u8; 8]) -> String {
    String::from_utf8_lossy(tag).trim_end_matches('\0').to_string()
}

/// Bounds-checked little-endian pod decoding over a borrowed section.
#[derive(Debug)]
pub struct PodReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> PodReader<'a> {
    /// Decode `buf`, labelling errors with `section`.
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        PodReader { buf, pos: 0, section }
    }

    fn take(&mut self, n: usize, what: &str) -> IndexResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| IndexError::Corrupt {
            context: format!("{}: {what} length overflows", self.section),
        })?;
        if end > self.buf.len() {
            return Err(IndexError::Truncated { context: format!("{}: {what}", self.section) });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one `u32`.
    pub fn u32(&mut self, what: &str) -> IndexResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read one `u64`.
    pub fn u64(&mut self, what: &str) -> IndexResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read `count` little-endian `u64`s.
    pub fn u64s(&mut self, count: usize, what: &str) -> IndexResult<Vec<u64>> {
        let bytes = self.take(
            count.checked_mul(8).ok_or_else(|| IndexError::Corrupt {
                context: format!("{}: {what} count overflows", self.section),
            })?,
            what,
        )?;
        Ok(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Read `count` little-endian `u32`s.
    pub fn u32s(&mut self, count: usize, what: &str) -> IndexResult<Vec<u32>> {
        let bytes = self.take(
            count.checked_mul(4).ok_or_else(|| IndexError::Corrupt {
                context: format!("{}: {what} count overflows", self.section),
            })?,
            what,
        )?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Read a length-prefixed UTF-8 string (`u32` length + bytes).
    pub fn string(&mut self, what: &str) -> IndexResult<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| IndexError::Corrupt {
            context: format!("{}: {what} is not UTF-8", self.section),
        })
    }

    /// Assert the section was consumed exactly.
    pub fn finish(self) -> IndexResult<()> {
        if self.pos != self.buf.len() {
            return Err(IndexError::Corrupt {
                context: format!(
                    "{}: {} trailing bytes after decoding",
                    self.section,
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl SketchIndex {
    /// Serialize this index into container bytes.
    pub fn to_container_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        push_u32(&mut meta, self.scheme().len() as u32);
        push_u64(&mut meta, self.scheme().seed());
        push_u32(&mut meta, self.params().bands() as u32);
        push_u32(&mut meta, self.params().rows() as u32);
        push_u32(&mut meta, self.n() as u32);
        for &s in self.set_sizes() {
            push_u64(&mut meta, s);
        }
        for name in self.names() {
            push_u32(&mut meta, name.len() as u32);
            meta.extend_from_slice(name.as_bytes());
        }

        let mut sigs = Vec::with_capacity(self.n() * self.scheme().len() * 8);
        for sig in self.signatures() {
            for &v in sig.values() {
                push_u64(&mut sigs, v);
            }
        }

        let mut buck = Vec::new();
        for band in 0..self.params().bands() {
            let b = self.band(band);
            push_u32(&mut buck, b.len() as u32);
            push_u32(&mut buck, b.ids().len() as u32);
            for &k in b.keys() {
                push_u64(&mut buck, k);
            }
            for &o in b.offsets() {
                push_u32(&mut buck, o);
            }
            for &id in b.ids() {
                push_u32(&mut buck, id);
            }
        }

        let mut sgnr = Vec::new();
        push_u32(&mut sgnr, SGNR_LAYOUT);
        push_u32(&mut sgnr, self.scheme().kind().code());
        push_u32(&mut sgnr, self.scheme().len() as u32);
        push_u64(&mut sgnr, self.scheme().seed());

        let mut writer = ContainerWriter::new();
        writer.add_section(SECTION_META, meta);
        writer.add_section(SECTION_SGNR, sgnr);
        writer.add_section(SECTION_SIGS, sigs);
        writer.add_section(SECTION_BUCK, buck);
        writer.to_bytes()
    }

    /// Write this index as a container file at `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> IndexResult<()> {
        self.write_to_with(&gas_chaos::RealFs, path)
    }

    /// [`Self::write_to`] through an explicit [`gas_chaos::Storage`]
    /// (fault-injection drills).
    pub fn write_to_with(
        &self,
        storage: &dyn gas_chaos::Storage,
        path: impl AsRef<Path>,
    ) -> IndexResult<()> {
        storage.write(path.as_ref(), &self.to_container_bytes())?;
        Ok(())
    }

    /// Decode an index from validated container bytes.
    pub fn from_container_bytes(bytes: Vec<u8>) -> IndexResult<Self> {
        let container = Container::parse(bytes)?;

        let mut meta = PodReader::new(container.section(SECTION_META)?, "META");
        let sig_len = meta.u32("signature length")? as usize;
        let seed = meta.u64("seed")?;
        let bands = meta.u32("band count")? as usize;
        let rows = meta.u32("rows per band")? as usize;
        let n = meta.u32("sample count")? as usize;
        let set_sizes = meta.u64s(n, "set sizes")?;
        let mut names = Vec::with_capacity(n);
        for i in 0..n {
            names.push(meta.string(&format!("name {i}"))?);
        }
        meta.finish()?;

        // Since version 2 the signer is recorded in its own section; a
        // version-1 file predates OPH and can only hold k-mins signatures.
        let kind = if container.version() >= 2 {
            let mut sgnr = PodReader::new(container.section(SECTION_SGNR)?, "SGNR");
            let layout = sgnr.u32("signer layout version")?;
            if layout != SGNR_LAYOUT {
                return Err(IndexError::Corrupt {
                    context: format!("SGNR: unknown layout version {layout}"),
                });
            }
            let code = sgnr.u32("signer kind code")?;
            let kind = SignerKind::from_code(code).ok_or_else(|| IndexError::Corrupt {
                context: format!("SGNR: unknown signer kind code {code}"),
            })?;
            let sgnr_len = sgnr.u32("signer signature length")? as usize;
            let sgnr_seed = sgnr.u64("signer seed")?;
            sgnr.finish()?;
            if sgnr_len != sig_len || sgnr_seed != seed {
                return Err(IndexError::Corrupt {
                    context: format!(
                        "SGNR disagrees with META: {sgnr_len}/{sgnr_seed:#x} vs {sig_len}/{seed:#x}"
                    ),
                });
            }
            kind
        } else {
            SignerKind::KMins
        };

        let scheme = SignatureScheme::new(sig_len)
            .map_err(|_| IndexError::Corrupt { context: "META: zero signature length".into() })?
            .with_seed(seed)
            .with_kind(kind);
        let params = LshParams::new(bands, rows)
            .map_err(|_| IndexError::Corrupt { context: "META: zero bands or rows".into() })?;

        let mut sigs = PodReader::new(container.section(SECTION_SIGS)?, "SIGS");
        let mut signatures = Vec::with_capacity(n);
        for i in 0..n {
            signatures.push(MinHashSignature::from_values(
                sigs.u64s(sig_len, &format!("signature {i}"))?,
            ));
        }
        sigs.finish()?;

        let mut buck = PodReader::new(container.section(SECTION_BUCK)?, "BUCK");
        let mut band_tables = Vec::with_capacity(bands);
        for band in 0..bands {
            let key_count = buck.u32(&format!("band {band} key count"))? as usize;
            let id_count = buck.u32(&format!("band {band} id count"))? as usize;
            let keys = buck.u64s(key_count, &format!("band {band} keys"))?;
            let offsets = buck.u32s(key_count + 1, &format!("band {band} offsets"))?;
            let ids = buck.u32s(id_count, &format!("band {band} ids"))?;
            band_tables.push(BandBuckets::from_raw_parts(keys, offsets, ids)?);
        }
        buck.finish()?;

        SketchIndex::from_parts(scheme, params, signatures, set_sizes, names, band_tables)
    }

    /// Read an index container from `path`.
    pub fn read_from(path: impl AsRef<Path>) -> IndexResult<Self> {
        SketchIndex::from_container_bytes(gas_chaos::Storage::read(
            &gas_chaos::RealFs,
            path.as_ref(),
        )?)
    }
}

// ---------------------------------------------------------------------
// Version 3: the segmented, append-only container.
//
// ```text
// [0..8)    magic        b"GASIDX01"
// [8..12)   version      u32 LE (3)
// [12..20)  header_crc   u64 LE — fnv1a64 of bytes [0..12)
// [20..)    blocks, each:
//     [0..4)    kind          b"SEG\0" | b"MAN\0"
//     [4..8)    reserved      u32 LE (0)
//     [8..16)   payload_len   u64 LE
//     [16..24)  payload_crc   u64 LE — fnv1a64 of the payload
//     [24..32)  header_crc    u64 LE — fnv1a64 of bytes [0..24)
//     [32..)    payload
// ```
//
// Commits append `SEG* MAN` — the manifest strictly last. The scanner
// walks blocks until the first torn or unknown one and keeps the newest
// manifest seen; a crash, truncation or flip inside the newest commit
// therefore falls back to the previous generation, and a file with no
// surviving manifest is rejected with a typed error.
// ---------------------------------------------------------------------

/// Byte length of the v3 file header.
pub(crate) const V3_HEADER_LEN: usize = 20;
/// Byte length of one v3 block header.
pub(crate) const V3_BLOCK_HEADER_LEN: usize = 32;
/// Block kind: one immutable sealed segment.
pub(crate) const BLOCK_SEGMENT: [u8; 4] = *b"SEG\0";
/// Block kind: one manifest generation.
pub(crate) const BLOCK_MANIFEST: [u8; 4] = *b"MAN\0";
/// Layout version of segment payloads.
const SEGMENT_LAYOUT: u32 = 1;
/// Layout version of manifest payloads.
const MANIFEST_LAYOUT: u32 = 1;

use crate::segment::{Segment, SharedSegment};

/// Sniff the container family and version of a byte buffer without
/// committing to a layout: shared by every opener so v1/v2 section
/// tables and v3 block streams dispatch to the right reader.
pub(crate) fn container_version(bytes: &[u8]) -> IndexResult<u32> {
    if bytes.len() < 12 {
        return Err(IndexError::Truncated { context: "container header".into() });
    }
    if bytes[0..8] != MAGIC {
        return Err(IndexError::BadMagic);
    }
    Ok(u32::from_le_bytes(bytes[8..12].try_into().unwrap()))
}

/// The 20-byte v3 file header.
pub(crate) fn v3_header_bytes() -> Vec<u8> {
    let mut out = Vec::with_capacity(V3_HEADER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_SEGMENTED.to_le_bytes());
    let crc = fnv1a64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// One framed, checksummed v3 block.
pub(crate) fn block_bytes(kind: [u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(V3_BLOCK_HEADER_LEN + payload.len());
    out.extend_from_slice(&kind);
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    let header_crc = fnv1a64(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn push_scheme(out: &mut Vec<u8>, scheme: &SignatureScheme, params: &LshParams) {
    push_u32(out, scheme.kind().code());
    push_u32(out, scheme.len() as u32);
    push_u64(out, scheme.seed());
    push_u32(out, params.bands() as u32);
    push_u32(out, params.rows() as u32);
}

fn read_scheme(r: &mut PodReader<'_>) -> IndexResult<(SignatureScheme, LshParams)> {
    let code = r.u32("signer kind code")?;
    let kind = SignerKind::from_code(code).ok_or_else(|| IndexError::Corrupt {
        context: format!("{}: unknown signer kind code {code}", r.section),
    })?;
    let len = r.u32("signature length")? as usize;
    let seed = r.u64("seed")?;
    let bands = r.u32("band count")? as usize;
    let rows = r.u32("rows per band")? as usize;
    let scheme = SignatureScheme::new(len)
        .map_err(|_| IndexError::Corrupt { context: "zero signature length".into() })?
        .with_seed(seed)
        .with_kind(kind);
    let params = LshParams::new(bands, rows)
        .map_err(|_| IndexError::Corrupt { context: "zero bands or rows".into() })?;
    Ok((scheme, params))
}

/// Serialize a sealed segment as a v3 block payload.
pub(crate) fn segment_payload(seg: &Segment) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, SEGMENT_LAYOUT);
    push_u64(&mut out, seg.id());
    push_scheme(&mut out, seg.scheme(), seg.params());
    let n = seg.n_rows();
    push_u32(&mut out, n as u32);
    for &id in seg.global_ids() {
        push_u32(&mut out, id);
    }
    for &s in seg.set_sizes() {
        push_u64(&mut out, s);
    }
    for name in seg.names() {
        push_u32(&mut out, name.len() as u32);
        out.extend_from_slice(name.as_bytes());
    }
    for sig in seg.signatures() {
        for &v in sig.values() {
            push_u64(&mut out, v);
        }
    }
    for band in 0..seg.params().bands() {
        let b = seg.band(band);
        push_u32(&mut out, b.len() as u32);
        push_u32(&mut out, b.ids().len() as u32);
        for &k in b.keys() {
            push_u64(&mut out, k);
        }
        for &o in b.offsets() {
            push_u32(&mut out, o);
        }
        for &id in b.ids() {
            push_u32(&mut out, id);
        }
    }
    out
}

/// Decode a segment block payload (already checksum-validated).
pub(crate) fn decode_segment(payload: &[u8]) -> IndexResult<Segment> {
    let mut r = PodReader::new(payload, "SEG");
    let layout = r.u32("segment layout version")?;
    if layout != SEGMENT_LAYOUT {
        return Err(IndexError::Corrupt {
            context: format!("SEG: unknown layout version {layout}"),
        });
    }
    let id = r.u64("segment id")?;
    let (scheme, params) = read_scheme(&mut r)?;
    let n = r.u32("row count")? as usize;
    let global_ids = r.u32s(n, "global ids")?;
    let set_sizes = r.u64s(n, "set sizes")?;
    let mut names = Vec::with_capacity(n);
    for i in 0..n {
        names.push(r.string(&format!("name {i}"))?);
    }
    let mut signatures = Vec::with_capacity(n);
    for i in 0..n {
        signatures
            .push(MinHashSignature::from_values(r.u64s(scheme.len(), &format!("signature {i}"))?));
    }
    let mut bands = Vec::with_capacity(params.bands());
    for band in 0..params.bands() {
        let key_count = r.u32(&format!("band {band} key count"))? as usize;
        let id_count = r.u32(&format!("band {band} id count"))? as usize;
        let keys = r.u64s(key_count, &format!("band {band} keys"))?;
        let offsets = r.u32s(key_count + 1, &format!("band {band} offsets"))?;
        let ids = r.u32s(id_count, &format!("band {band} ids"))?;
        bands.push(BandBuckets::from_raw_parts(keys, offsets, ids)?);
    }
    r.finish()?;
    Segment::from_parts(id, scheme, params, global_ids, signatures, set_sizes, names, bands)
}

/// One manifest entry: which segment, how many rows, and the checksum
/// its block payload must carry (cross-checked against the scanned
/// block, so a manifest can never adopt a segment it was not written
/// with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ManifestSegmentRef {
    pub id: u64,
    pub rows: u32,
    pub crc: u64,
}

/// One manifest generation: the full committed state of the index at
/// one commit (minus segment payloads, which live in their own blocks).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ManifestRecord {
    pub generation: u64,
    pub scheme: SignatureScheme,
    pub params: LshParams,
    pub next_id: u32,
    pub segments: Vec<ManifestSegmentRef>,
    pub tombstones: Vec<u32>,
}

/// Serialize a manifest as a v3 block payload.
pub(crate) fn manifest_payload(m: &ManifestRecord) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, MANIFEST_LAYOUT);
    push_u64(&mut out, m.generation);
    push_scheme(&mut out, &m.scheme, &m.params);
    push_u32(&mut out, m.next_id);
    push_u32(&mut out, m.segments.len() as u32);
    for sref in &m.segments {
        push_u64(&mut out, sref.id);
        push_u32(&mut out, sref.rows);
        push_u64(&mut out, sref.crc);
    }
    push_u32(&mut out, m.tombstones.len() as u32);
    for &id in &m.tombstones {
        push_u32(&mut out, id);
    }
    out
}

/// Decode a manifest block payload (already checksum-validated).
pub(crate) fn decode_manifest(payload: &[u8]) -> IndexResult<ManifestRecord> {
    let mut r = PodReader::new(payload, "MAN");
    let layout = r.u32("manifest layout version")?;
    if layout != MANIFEST_LAYOUT {
        return Err(IndexError::Corrupt {
            context: format!("MAN: unknown layout version {layout}"),
        });
    }
    let generation = r.u64("generation")?;
    let (scheme, params) = read_scheme(&mut r)?;
    let next_id = r.u32("next global id")?;
    let segment_count = r.u32("segment count")? as usize;
    let mut segments = Vec::with_capacity(segment_count);
    for i in 0..segment_count {
        let id = r.u64(&format!("segment ref {i} id"))?;
        let rows = r.u32(&format!("segment ref {i} rows"))?;
        let crc = r.u64(&format!("segment ref {i} crc"))?;
        segments.push(ManifestSegmentRef { id, rows, crc });
    }
    let tombstone_count = r.u32("tombstone count")? as usize;
    let tombstones = r.u32s(tombstone_count, "tombstones")?;
    if tombstones.windows(2).any(|w| w[0] >= w[1]) {
        return Err(IndexError::Corrupt {
            context: "MAN: tombstones are not strictly increasing".into(),
        });
    }
    r.finish()?;
    Ok(ManifestRecord { generation, scheme, params, next_id, segments, tombstones })
}

/// Everything a scan of a v3 file recovers.
#[derive(Debug)]
pub(crate) struct V3Scan {
    /// Every intact segment block, by segment id, with its payload crc.
    pub segments: std::collections::BTreeMap<u64, (SharedSegment, u64)>,
    /// The newest intact manifest (its referenced segments all resolve).
    pub manifest: Option<ManifestRecord>,
    /// Byte length of the prefix ending at the newest intact manifest —
    /// the resume point for appends; everything after it is a torn tail.
    pub valid_len: usize,
    /// Bytes after `valid_len` (torn commit remains).
    pub torn_bytes: usize,
    /// Highest segment id seen anywhere in the file (referenced or not),
    /// so reopened writers never reuse an id a torn tail burned.
    pub max_segment_id: u64,
    /// The scan stopped at a checksum-*valid* block of a kind this build
    /// does not know — bytes written by a newer build, not a torn
    /// commit. Read-only opens may still fall back to the last
    /// understood manifest; read-write opens must refuse, because the
    /// writer's truncate-then-append protocol would destroy the foreign
    /// blocks.
    pub foreign_kind: Option<[u8; 4]>,
}

/// Walk a v3 file front to back. Checksummed blocks are consumed until
/// the first torn (truncated, flipped or unknown) one; the newest
/// manifest whose referenced segments all resolved wins. Structural
/// garbage *inside* a checksum-valid block is a hard typed error — it
/// cannot come from a crash, only from a writer bug or a forged file.
pub(crate) fn scan_v3(bytes: &[u8]) -> IndexResult<V3Scan> {
    if bytes.len() < V3_HEADER_LEN {
        return Err(IndexError::Truncated { context: "segmented container header".into() });
    }
    if bytes[0..8] != MAGIC {
        return Err(IndexError::BadMagic);
    }
    let stored = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if fnv1a64(&bytes[..12]) != stored {
        return Err(IndexError::ChecksumMismatch { section: "v3 header".into() });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION_SEGMENTED {
        return Err(IndexError::UnsupportedVersion(version));
    }
    let mut scan = V3Scan {
        segments: Default::default(),
        manifest: None,
        valid_len: V3_HEADER_LEN,
        torn_bytes: 0,
        max_segment_id: 0,
        foreign_kind: None,
    };
    let mut pos = V3_HEADER_LEN;
    while pos + V3_BLOCK_HEADER_LEN <= bytes.len() {
        let header = &bytes[pos..pos + V3_BLOCK_HEADER_LEN];
        let stored = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if fnv1a64(&header[..24]) != stored {
            break; // torn or flipped block header
        }
        let kind: [u8; 4] = header[0..4].try_into().unwrap();
        let payload_len = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let Some(end) =
            pos.checked_add(V3_BLOCK_HEADER_LEN).and_then(|p| p.checked_add(payload_len))
        else {
            break;
        };
        if end > bytes.len() {
            break; // truncated payload
        }
        let payload = &bytes[pos + V3_BLOCK_HEADER_LEN..end];
        let payload_crc = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if fnv1a64(payload) != payload_crc {
            break; // flipped payload
        }
        match kind {
            BLOCK_SEGMENT => {
                let segment = decode_segment(payload)?;
                scan.max_segment_id = scan.max_segment_id.max(segment.id());
                if scan
                    .segments
                    .insert(segment.id(), (SharedSegment::new(segment), payload_crc))
                    .is_some()
                {
                    return Err(IndexError::Corrupt {
                        context: "duplicate segment id in container".into(),
                    });
                }
            }
            BLOCK_MANIFEST => {
                let manifest = decode_manifest(payload)?;
                for sref in &manifest.segments {
                    match scan.segments.get(&sref.id) {
                        Some((seg, crc))
                            if *crc == sref.crc && seg.n_rows() == sref.rows as usize => {}
                        _ => {
                            return Err(IndexError::Corrupt {
                                context: format!(
                                    "manifest generation {} references segment {} \
                                     that is absent or does not match",
                                    manifest.generation, sref.id
                                ),
                            });
                        }
                    }
                }
                scan.manifest = Some(manifest);
                scan.valid_len = end;
            }
            _ => {
                // A checksum-valid block of a kind this build does not
                // know: bytes from a newer build, not corruption. Stop
                // scanning (we cannot interpret what follows) but record
                // the fact so writers refuse to truncate it away.
                scan.foreign_kind = Some(kind);
                break;
            }
        }
        pos = end;
    }
    scan.torn_bytes = bytes.len() - scan.valid_len;
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexConfig;
    use crate::service::IndexOptions;
    use gas_core::indicator::SampleCollection;

    fn small_index() -> SketchIndex {
        let collection = SampleCollection::from_sorted_sets(vec![
            (0..300u64).collect(),
            (100..400u64).collect(),
            (10_000..10_200u64).collect(),
            vec![],
        ])
        .unwrap()
        .with_names(vec!["a".into(), "b".into(), "naïve-✓".into(), "empty".into()])
        .unwrap();
        IndexOptions::from_config(IndexConfig::default().with_signature_len(32))
            .build_index(&collection)
            .unwrap()
    }

    #[test]
    fn container_bytes_round_trip() {
        let index = small_index();
        let bytes = index.to_container_bytes();
        let back = SketchIndex::from_container_bytes(bytes).unwrap();
        assert_eq!(back, index);
        assert_eq!(back.names()[2], "naïve-✓");
    }

    #[test]
    fn file_round_trip() {
        let index = small_index();
        let path = std::env::temp_dir()
            .join(format!("gas_index_container_test_{}.gidx", std::process::id()));
        index.write_to(&path).unwrap();
        let back = SketchIndex::read_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, index);
    }

    fn small_oph_index() -> SketchIndex {
        let collection = SampleCollection::from_sorted_sets(vec![
            (0..300u64).collect(),
            (100..400u64).collect(),
        ])
        .unwrap();
        let config = IndexConfig::default()
            .with_signature_len(32)
            .with_signer(gas_core::minhash::SignerKind::Oph);
        IndexOptions::from_config(config).build_index(&collection).unwrap()
    }

    /// Rewrite the version field of container `bytes` and fix up the
    /// header/table checksum so the file parses as that version.
    fn with_version(mut bytes: Vec<u8>, version: u32) -> Vec<u8> {
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        let sections = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let table_end = HEADER_LEN + sections * TABLE_ENTRY_LEN;
        let crc = fnv1a64(&bytes[..table_end]);
        bytes[table_end..table_end + 8].copy_from_slice(&crc.to_le_bytes());
        bytes
    }

    #[test]
    fn signer_kind_survives_the_round_trip() {
        use gas_core::minhash::SignerKind;
        let index = small_oph_index();
        let bytes = index.to_container_bytes();
        let container = Container::parse(bytes.clone()).unwrap();
        assert_eq!(container.version(), VERSION);
        assert!(container.tags().contains(&"SGNR".to_string()));
        let back = SketchIndex::from_container_bytes(bytes).unwrap();
        assert_eq!(back, index);
        assert_eq!(back.scheme().kind(), SignerKind::Oph);
    }

    #[test]
    fn version_one_files_decode_as_kmins() {
        use gas_core::minhash::SignerKind;
        // A legacy (version-1) reader/writer pair predates the SGNR
        // section: a v1 file decodes with the k-mins signer even if an
        // SGNR section happens to be present, because v1 semantics are
        // "signatures are k-mins" by definition.
        let index = small_oph_index();
        let legacy = with_version(index.to_container_bytes(), 1);
        let container = Container::parse(legacy.clone()).unwrap();
        assert_eq!(container.version(), 1);
        let back = SketchIndex::from_container_bytes(legacy).unwrap();
        assert_eq!(back.scheme().kind(), SignerKind::KMins);
        // Raw signature values and buckets are untouched by the fallback.
        assert_eq!(back.signatures(), index.signatures());
        // Future versions stay rejected.
        let future = with_version(index.to_container_bytes(), VERSION + 1);
        assert!(matches!(
            Container::parse(future),
            Err(IndexError::UnsupportedVersion(v)) if v == VERSION + 1
        ));
    }

    #[test]
    fn sgnr_section_inconsistencies_are_rejected() {
        let index = small_oph_index();
        let bytes = index.to_container_bytes();
        let container = Container::parse(bytes).unwrap();
        let rebuild = |sgnr: Vec<u8>| -> IndexResult<SketchIndex> {
            let mut writer = ContainerWriter::new();
            writer.add_section(SECTION_META, container.section(SECTION_META).unwrap().to_vec());
            writer.add_section(SECTION_SGNR, sgnr);
            writer.add_section(SECTION_SIGS, container.section(SECTION_SIGS).unwrap().to_vec());
            writer.add_section(SECTION_BUCK, container.section(SECTION_BUCK).unwrap().to_vec());
            SketchIndex::from_container_bytes(writer.to_bytes())
        };
        let good = container.section(SECTION_SGNR).unwrap().to_vec();
        assert!(rebuild(good.clone()).is_ok());

        // Unknown signer-kind code.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(rebuild(bad), Err(IndexError::Corrupt { .. })));

        // Unknown SGNR layout version.
        let mut bad = good.clone();
        bad[0..4].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(rebuild(bad), Err(IndexError::Corrupt { .. })));

        // Signature length disagreeing with META.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(rebuild(bad), Err(IndexError::Corrupt { .. })));

        // Trailing bytes after the fixed fields.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(rebuild(bad), Err(IndexError::Corrupt { .. })));

        // Missing SGNR section entirely (in a version-2 file).
        let mut writer = ContainerWriter::new();
        writer.add_section(SECTION_META, container.section(SECTION_META).unwrap().to_vec());
        writer.add_section(SECTION_SIGS, container.section(SECTION_SIGS).unwrap().to_vec());
        writer.add_section(SECTION_BUCK, container.section(SECTION_BUCK).unwrap().to_vec());
        assert!(matches!(
            SketchIndex::from_container_bytes(writer.to_bytes()),
            Err(IndexError::MissingSection(tag)) if tag == "SGNR"
        ));
    }

    #[test]
    fn parse_rejects_bad_magic_version_and_truncation() {
        let bytes = small_index().to_container_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(Container::parse(bad_magic), Err(IndexError::BadMagic)));

        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        // Version bytes are covered by the table checksum, but the version
        // check runs first so old readers fail with the right error.
        assert!(matches!(Container::parse(bad_version), Err(IndexError::UnsupportedVersion(99))));

        let truncated = bytes[..bytes.len() - 7].to_vec();
        assert!(matches!(Container::parse(truncated), Err(IndexError::Truncated { .. })));

        assert!(matches!(
            Container::parse(bytes[..10].to_vec()),
            Err(IndexError::Truncated { .. })
        ));
    }

    #[test]
    fn parse_rejects_flipped_payload_and_table_bytes() {
        let bytes = small_index().to_container_bytes();

        // Flip one payload byte (the last byte of the file).
        let mut bad_payload = bytes.clone();
        *bad_payload.last_mut().unwrap() ^= 0x01;
        assert!(matches!(Container::parse(bad_payload), Err(IndexError::ChecksumMismatch { .. })));

        // Flip a section-table byte (tag of the first section).
        let mut bad_table = bytes.clone();
        bad_table[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            Container::parse(bad_table),
            Err(IndexError::ChecksumMismatch { section }) if section == "header"
        ));
    }

    #[test]
    fn missing_sections_are_reported() {
        let mut writer = ContainerWriter::new();
        writer.add_section(SECTION_META, vec![1, 2, 3]);
        let container = Container::parse(writer.to_bytes()).unwrap();
        assert_eq!(container.section(SECTION_META).unwrap(), &[1, 2, 3]);
        assert!(matches!(
            container.section(SECTION_SIGS),
            Err(IndexError::MissingSection(tag)) if tag == "SIGS"
        ));
        assert_eq!(container.tags(), vec!["META".to_string()]);
    }

    #[test]
    fn pod_reader_bounds_and_finish() {
        let buf = 7u64.to_le_bytes();
        let mut r = PodReader::new(&buf, "TEST");
        assert_eq!(r.u64("value").unwrap(), 7);
        assert!(matches!(r.u32("past end"), Err(IndexError::Truncated { .. })));

        let mut r = PodReader::new(&buf, "TEST");
        assert_eq!(r.u32("low half").unwrap(), 7);
        assert!(matches!(r.finish(), Err(IndexError::Corrupt { .. })));

        let mut r = PodReader::new(&buf, "TEST");
        assert!(matches!(r.u64s(2, "too many"), Err(IndexError::Truncated { .. })));
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the checksum so the on-disk format cannot drift silently.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
