//! The serving frontend: one object that owns the write/read/compact
//! loop of a living index.
//!
//! PR 5 gave the index snapshot-safe readers and PR 6 made serving cost
//! independent of commit history; this module adds the piece that makes
//! it a *service*: [`LocalIndexService`] implements the [`IndexService`]
//! trait (`create / add_batch / delete / commit / query_paged / stats`)
//! over an `IndexWriter` plus `IndexReader` snapshots, with
//!
//! * **pipelined commits** — staged batches are signed by a thread pool
//!   and sealed in submission order (see [`crate::pipeline`]), so
//!   commit N+1 signs while commit N seals;
//! * a **background compactor** — a maintenance thread plans merges
//!   under the size-tiered policy, builds the merged segments *off* the
//!   writer lock, and swaps the manifest atomically under live readers
//!   (readers stay pinned to their snapshot generation; the file vacuum
//!   is deferred until the last reader of a pre-swap generation drops);
//! * **admission control** — a bounded in-flight commit queue, a
//!   bounded concurrent-query count and optional per-batch commit
//!   deadlines, all shedding with typed [`IndexError::Overloaded`]
//!   instead of queueing without bound;
//! * a [`ServiceStats`] metrics feed per request class — queue depth,
//!   shed counts and latency histograms for commits and queries, plus
//!   compaction and vacuum counters.
//!
//! Construction goes through [`IndexOptions`], the one builder that
//! also replaces the scattered constructors (`SketchIndex::build`,
//! `IndexWriter::create{,_at}`, `QueryEngine::for_reader{,...}`) — the
//! old entry points remain as `#[deprecated]` shims.

use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gas_chaos::{RetryPolicy, Storage};
use gas_core::indicator::SampleCollection;

use crate::build::{IndexConfig, SketchIndex};
use crate::error::{IndexError, IndexResult};
use crate::lifecycle::{
    CommitSummary, CompactionPolicy, Compactor, IndexReader, IndexWriter, VacuumReport,
};
use crate::pipeline::{CommitPipeline, CommitTicket};
use crate::query::{PageRequest, QueryEngine, QueryPage};
use crate::segment::SharedSegment;

/// The one construction surface of the index stack: signature scheme,
/// LSH parameters, compaction policy and serving knobs in one builder.
///
/// Every constructor the crate used to scatter — `SketchIndex::build`,
/// `IndexWriter::create{,_at}`, `QueryEngine::for_reader{,...}` — is
/// expressible through an `IndexOptions` value; the old entry points
/// survive as `#[deprecated]` shims over the same internals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexOptions {
    config: IndexConfig,
    compaction: CompactionPolicy,
    commit_deadline: Option<Duration>,
    max_pending_commits: usize,
    max_concurrent_queries: usize,
    signer_threads: usize,
    auto_compact: bool,
    compact_interval: Duration,
    snapshot_retention: usize,
    tracing: bool,
    retry: RetryPolicy,
    compact_pause_depth: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            config: IndexConfig::default(),
            compaction: CompactionPolicy::default(),
            commit_deadline: None,
            max_pending_commits: 64,
            max_concurrent_queries: 64,
            signer_threads: 4,
            auto_compact: true,
            compact_interval: Duration::from_millis(10),
            snapshot_retention: 8,
            tracing: false,
            retry: RetryPolicy::default(),
            compact_pause_depth: 64,
        }
    }
}

impl IndexOptions {
    /// Options with every knob at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Options wrapping an existing [`IndexConfig`].
    pub fn from_config(config: IndexConfig) -> Self {
        IndexOptions { config, ..Self::default() }
    }

    /// The wrapped index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Replace the wrapped index configuration wholesale.
    pub fn with_config(mut self, config: IndexConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the signature length (positions per MinHash signature).
    pub fn with_signature_len(mut self, signature_len: usize) -> Self {
        self.config = self.config.with_signature_len(signature_len);
        self
    }

    /// Set the signing seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config = self.config.with_seed(seed);
        self
    }

    /// Set the LSH target similarity threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.config = self.config.with_threshold(threshold);
        self
    }

    /// Set the signer kind (k-mins or one-permutation).
    pub fn with_signer(mut self, signer: gas_core::minhash::SignerKind) -> Self {
        self.config = self.config.with_signer(signer);
        self
    }

    /// Set the size-tiered compaction policy.
    pub fn with_compaction(mut self, compaction: CompactionPolicy) -> Self {
        self.compaction = compaction;
        self
    }

    /// The compaction policy in force.
    pub fn compaction(&self) -> &CompactionPolicy {
        &self.compaction
    }

    /// Set the per-batch commit deadline: a batch still queued for
    /// signing past this age is shed with [`IndexError::Overloaded`].
    pub fn with_commit_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.commit_deadline = deadline;
        self
    }

    /// Bound the in-flight (submitted, not yet sealed) commits; further
    /// `commit()` calls shed with [`IndexError::Overloaded`].
    pub fn with_max_pending_commits(mut self, max: usize) -> Self {
        self.max_pending_commits = max.max(1);
        self
    }

    /// Bound the concurrently served `query_paged` calls.
    pub fn with_max_concurrent_queries(mut self, max: usize) -> Self {
        self.max_concurrent_queries = max.max(1);
        self
    }

    /// Signer pool size of the commit pipeline.
    pub fn with_signer_threads(mut self, threads: usize) -> Self {
        self.signer_threads = threads.max(1);
        self
    }

    /// Enable or disable the background compaction thread.
    pub fn with_auto_compact(mut self, auto_compact: bool) -> Self {
        self.auto_compact = auto_compact;
        self
    }

    /// How often the background compactor wakes for a maintenance pass.
    pub fn with_compact_interval(mut self, interval: Duration) -> Self {
        self.compact_interval = interval;
        self
    }

    /// How many recent snapshot generations the service keeps pinned
    /// for pagination-cursor resumption.
    pub fn with_snapshot_retention(mut self, generations: usize) -> Self {
        self.snapshot_retention = generations.max(1);
        self
    }

    /// Enable the `gas-obs` span recorder when the service starts (the
    /// programmatic equivalent of `GAS_TRACE=1`). `false` leaves the
    /// recorder as the environment configured it — it never force-
    /// disables tracing another component turned on.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Set the retry policy [`LocalIndexService::commit_wait_retry`]
    /// uses for transient faults (storage errors, overload sheds):
    /// bounded attempts, exponential backoff, deterministic jitter.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Pause background compaction while this many (or more) commits
    /// are in flight — under commit pressure the maintenance thread
    /// yields the writer lock to the serving path instead of competing
    /// for it. Paused passes are counted in
    /// [`CompactionStats::paused_passes`].
    pub fn with_compact_pause_depth(mut self, depth: usize) -> Self {
        self.compact_pause_depth = depth.max(1);
        self
    }

    /// A fresh, empty, in-memory [`IndexWriter`] under these options.
    pub fn open_writer(&self) -> IndexResult<IndexWriter> {
        IndexWriter::new_in_memory(&self.config)
    }

    /// A fresh [`IndexWriter`] backed by a new container file at `path`.
    pub fn create_writer_at(&self, path: impl AsRef<Path>) -> IndexResult<IndexWriter> {
        IndexWriter::new_at(path, &self.config)
    }

    /// Build a monolithic [`SketchIndex`] over a whole collection.
    pub fn build_index(&self, collection: &SampleCollection) -> IndexResult<SketchIndex> {
        SketchIndex::build_monolithic(collection, &self.config)
    }

    /// A [`Compactor`] under these options' compaction policy.
    pub fn compactor(&self) -> IndexResult<Compactor> {
        Compactor::new(self.compaction)
    }

    /// Start an in-memory [`LocalIndexService`] under these options.
    pub fn serve(&self) -> IndexResult<LocalIndexService> {
        LocalIndexService::create(*self)
    }

    /// Start a [`LocalIndexService`] over a fresh container file.
    pub fn serve_at(&self, path: impl AsRef<Path>) -> IndexResult<LocalIndexService> {
        LocalIndexService::from_writer(self.create_writer_at(path)?, *self)
    }

    /// Start a [`LocalIndexService`] over an existing index file.
    pub fn serve_open(&self, path: impl AsRef<Path>) -> IndexResult<LocalIndexService> {
        LocalIndexService::from_writer(IndexWriter::open(path)?, *self)
    }
}

// The latency histogram moved to `gas-obs` (the whole workspace bins
// latencies identically now); re-exported here for compatibility.
pub use gas_obs::LatencyHistogram;

/// Live counters of one request class; `pub(crate)` — the public view
/// is the [`RequestClassStats`] snapshot.
#[derive(Debug, Default)]
pub(crate) struct ClassMetrics {
    accepted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
    latency: Mutex<LatencyHistogram>,
}

impl ClassMetrics {
    /// Admit a request: it now occupies queue depth until `finish` or
    /// `shed`.
    fn accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Refuse a request at the door (queue bound): never admitted, no
    /// depth to release.
    fn reject(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Finish an admitted request.
    pub(crate) fn finish(&self, latency: Duration, ok: bool) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.lock().expect("latency lock poisoned").record(latency);
    }

    /// Shed an admitted request (deadline expiry after admission).
    pub(crate) fn shed(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> RequestClassStats {
        RequestClassStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            latency: self.latency.lock().expect("latency lock poisoned").clone(),
        }
    }
}

/// A snapshot of one request class's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestClassStats {
    /// Requests admitted past admission control.
    pub accepted: u64,
    /// Requests shed (queue bound at the door or deadline afterwards).
    pub shed: u64,
    /// Admitted requests that completed successfully.
    pub completed: u64,
    /// Admitted requests that failed with an error.
    pub failed: u64,
    /// Requests currently in flight.
    pub queue_depth: usize,
    /// High-water mark of in-flight requests.
    pub max_queue_depth: usize,
    /// Latency histogram of finished requests.
    pub latency: LatencyHistogram,
}

/// Counters of the background compaction/vacuum loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Maintenance passes that applied a merge.
    pub passes: u64,
    /// Segment groups merged across all passes.
    pub groups_merged: u64,
    /// Segments replaced by merged ones.
    pub segments_compacted: u64,
    /// Tombstoned rows physically dropped.
    pub tombstones_purged: u64,
    /// Rows written into merged segments.
    pub rows_written: u64,
    /// Built merges discarded because the writer state moved underneath
    /// (another compaction claimed a member segment first).
    pub stale_passes: u64,
    /// Merges whose build or apply failed with an error.
    pub failed_passes: u64,
    /// Maintenance passes skipped because commit pressure was at or
    /// above the configured pause depth (degraded mode: serving wins).
    pub paused_passes: u64,
    /// Vacuum attempts deferred because a reader was still pinned to a
    /// pre-swap generation.
    pub vacuums_deferred: u64,
    /// Vacuums that rewrote the backing file.
    pub vacuums_run: u64,
    /// Bytes those vacuums reclaimed.
    pub vacuum_bytes_reclaimed: u64,
}

/// The [`IndexService::stats`] feed: per-class request counters plus
/// compaction state and the usual index shape figures.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Commit pipeline counters.
    pub commit: RequestClassStats,
    /// Paged-query counters.
    pub query: RequestClassStats,
    /// Background compaction/vacuum counters.
    pub compact: CompactionStats,
    /// Committed manifest generation at snapshot time.
    pub generation: u64,
    /// Live segments.
    pub segments: usize,
    /// Live samples.
    pub live_samples: usize,
}

impl ServiceStats {
    /// Fold these counters into a metrics snapshot under the shared
    /// `gas_*` namespace (see the README's observability table).
    pub fn fold_into(&self, snap: &mut gas_obs::MetricsSnapshot) {
        for (class, stats) in [("commit", &self.commit), ("query", &self.query)] {
            snap.set_counter(&format!("gas_serve_{class}_accepted_total"), stats.accepted);
            snap.set_counter(&format!("gas_serve_{class}_shed_total"), stats.shed);
            snap.set_counter(&format!("gas_serve_{class}_completed_total"), stats.completed);
            snap.set_counter(&format!("gas_serve_{class}_failed_total"), stats.failed);
            snap.set_gauge(&format!("gas_serve_{class}_queue_depth"), stats.queue_depth as i64);
            snap.set_gauge(
                &format!("gas_serve_{class}_queue_depth_max"),
                stats.max_queue_depth as i64,
            );
            snap.set_histogram(&format!("gas_serve_{class}_micros"), stats.latency.clone());
        }
        snap.set_counter("gas_compact_passes_total", self.compact.passes);
        snap.set_counter("gas_compact_groups_merged_total", self.compact.groups_merged);
        snap.set_counter("gas_compact_segments_compacted_total", self.compact.segments_compacted);
        snap.set_counter("gas_compact_tombstones_purged_total", self.compact.tombstones_purged);
        snap.set_counter("gas_compact_rows_written_total", self.compact.rows_written);
        snap.set_counter("gas_compact_stale_passes_total", self.compact.stale_passes);
        snap.set_counter("gas_compact_failed_passes_total", self.compact.failed_passes);
        snap.set_counter("gas_compact_paused_passes_total", self.compact.paused_passes);
        snap.set_counter("gas_compact_vacuums_deferred_total", self.compact.vacuums_deferred);
        snap.set_counter("gas_compact_vacuums_run_total", self.compact.vacuums_run);
        snap.set_counter(
            "gas_compact_vacuum_bytes_reclaimed_total",
            self.compact.vacuum_bytes_reclaimed,
        );
        snap.set_gauge("gas_index_generation", self.generation as i64);
        snap.set_gauge("gas_index_segments", self.segments as i64);
        snap.set_gauge("gas_index_live_samples", self.live_samples as i64);
    }
}

/// Per-cause counters of what a degraded query survived: each field is
/// how many times that transient condition was absorbed instead of
/// surfaced as an error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedCauses {
    /// Admission control shed the query; an empty page set stands in.
    pub overloaded: u64,
    /// The pagination cursor's generation was no longer pinned; the
    /// scan restarted from the first page of a fresh snapshot.
    pub stale_cursor: u64,
    /// A transient storage fault interrupted the query.
    pub storage: u64,
}

impl DegradedCauses {
    fn any(&self) -> bool {
        self.overloaded + self.stale_cursor + self.storage > 0
    }
}

/// The answer of [`LocalIndexService::query_paged_degraded`]: best-
/// effort pages plus an explicit flag saying whether they are the full
/// answer. `degraded == false` means the pages are exactly what
/// [`IndexService::query_paged`] would have returned.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedBatch {
    /// One page per query — possibly empty when the service absorbed a
    /// shed, never silently partial without `degraded` saying so.
    pub pages: Vec<QueryPage>,
    /// True when any transient condition was absorbed.
    pub degraded: bool,
    /// Which conditions were absorbed, per cause.
    pub causes: DegradedCauses,
}

/// The serving API over a living index: stage (`add_batch`/`delete`),
/// commit through the pipeline, read through pinned snapshots, observe
/// through `stats`. Implementations are `Sync` — one service value is
/// shared by writer and query threads.
pub trait IndexService: Send + Sync {
    /// Start a service under `options`.
    fn create(options: IndexOptions) -> IndexResult<Self>
    where
        Self: Sized;

    /// Stage a batch of samples; returns the assigned global id range.
    /// Staged rows are invisible to readers until a commit seals them.
    fn add_batch(&self, samples: Vec<(String, Vec<u64>)>) -> IndexResult<Range<u32>>;

    /// Stage the delete of a committed, live sample.
    fn delete(&self, id: u32) -> IndexResult<()>;

    /// Submit everything staged as one commit through the pipeline.
    /// Returns immediately with a [`CommitTicket`]; sheds with
    /// [`IndexError::Overloaded`] when the in-flight bound is reached.
    fn commit(&self) -> IndexResult<CommitTicket>;

    /// [`Self::commit`], blocking until the commit seals.
    fn commit_wait(&self) -> IndexResult<CommitSummary> {
        self.commit()?.wait()
    }

    /// Serve one page per query. A request without a cursor pins the
    /// current snapshot; a cursor resumes against its pinned generation
    /// (the service retains a bounded window of recent generations) or
    /// fails with a typed [`IndexError::StaleCursor`].
    fn query_paged(&self, queries: &[Vec<u64>], req: &PageRequest) -> IndexResult<Vec<QueryPage>>;

    /// An atomic snapshot of the current committed state, pinned to its
    /// generation for as long as the caller holds it.
    fn snapshot(&self) -> IndexReader;

    /// The metrics feed.
    fn stats(&self) -> ServiceStats;

    /// The unified observability snapshot: every metric registered in
    /// the process-global `gas-obs` registry (pipeline stage timings,
    /// compaction phases, dist byte counters, ...) with this service's
    /// [`ServiceStats`] folded in under the same `gas_*` namespace.
    /// Feed it to `gas_obs::to_prometheus` / `gas_obs::metrics_to_json`.
    fn telemetry(&self) -> gas_obs::MetricsSnapshot {
        let mut snap = gas_obs::snapshot();
        self.stats().fold_into(&mut snap);
        snap
    }
}

/// State shared between the service handle, the pipeline's sealer and
/// the background compactor.
struct ServiceShared {
    writer: Arc<Mutex<IndexWriter>>,
    options: IndexOptions,
    commit_metrics: Arc<ClassMetrics>,
    query_metrics: Arc<ClassMetrics>,
    compact_stats: Mutex<CompactionStats>,
    /// Recent generations kept pinned for cursor resumption,
    /// generation → snapshot. Bounded by `options.snapshot_retention`;
    /// the vacuum step may additionally evict pre-swap generations.
    pinned: Mutex<BTreeMap<u64, IndexReader>>,
    /// Every snapshot handed out: (generation, weak segment-set
    /// handle). A live weak handle of a pre-swap generation defers the
    /// post-compaction vacuum.
    issued: Mutex<Vec<(u64, Weak<Vec<SharedSegment>>)>>,
    /// Post-swap generation whose file vacuum is still owed.
    pending_vacuum: Mutex<Option<u64>>,
}

impl ServiceShared {
    /// Take a snapshot, register it for generation pinning and vacuum
    /// deferral, and evict pinned generations beyond the retention
    /// window.
    fn snapshot(&self) -> IndexReader {
        let reader = self.writer.lock().expect("writer lock poisoned").reader();
        let generation = reader.generation();
        {
            let mut issued = self.issued.lock().expect("issued lock poisoned");
            issued.retain(|(_, weak)| weak.strong_count() > 0);
            issued.push((generation, Arc::downgrade(reader.segments_handle())));
        }
        {
            let mut pinned = self.pinned.lock().expect("pinned lock poisoned");
            pinned.insert(generation, reader.clone());
            while pinned.len() > self.options.snapshot_retention {
                let oldest = *pinned.keys().next().expect("non-empty map");
                pinned.remove(&oldest);
            }
        }
        reader
    }

    /// The pinned snapshot of `generation`, or a typed stale-cursor
    /// error naming the oldest generation still answerable.
    fn pinned_snapshot(&self, generation: u64) -> IndexResult<IndexReader> {
        let pinned = self.pinned.lock().expect("pinned lock poisoned");
        if let Some(reader) = pinned.get(&generation) {
            return Ok(reader.clone());
        }
        let oldest = pinned
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.writer.lock().expect("writer lock poisoned").generation());
        Err(IndexError::StaleCursor { cursor_generation: generation, snapshot_generation: oldest })
    }
}

/// The in-process [`IndexService`]: a pipelined writer, a background
/// compactor and bounded admission, behind one `Sync` handle.
pub struct LocalIndexService {
    shared: Arc<ServiceShared>,
    pipeline: Mutex<CommitPipeline>,
    compactor_stop: Arc<AtomicBool>,
    compactor_thread: Option<JoinHandle<()>>,
}

impl LocalIndexService {
    /// Start a service over an already-constructed writer (how the
    /// file-backed entry points [`IndexOptions::serve_at`] and
    /// [`IndexOptions::serve_open`] come in).
    pub fn from_writer(writer: IndexWriter, options: IndexOptions) -> IndexResult<Self> {
        // Validate the compaction policy up front: the background
        // thread has no one to report a bad policy to.
        Compactor::new(*options.compaction())?;
        if options.tracing {
            gas_obs::set_enabled(true);
        }
        let scheme = *writer.scheme();
        let writer = Arc::new(Mutex::new(writer));
        let commit_metrics = Arc::new(ClassMetrics::default());
        let pipeline = CommitPipeline::start(
            Arc::clone(&writer),
            scheme,
            options.signer_threads,
            Arc::clone(&commit_metrics),
        );
        let shared = Arc::new(ServiceShared {
            writer,
            options,
            commit_metrics,
            query_metrics: Arc::new(ClassMetrics::default()),
            compact_stats: Mutex::new(CompactionStats::default()),
            pinned: Mutex::new(BTreeMap::new()),
            issued: Mutex::new(Vec::new()),
            pending_vacuum: Mutex::new(None),
        });
        let compactor_stop = Arc::new(AtomicBool::new(false));
        let compactor_thread = if options.auto_compact {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&compactor_stop);
            Some(std::thread::spawn(move || compactor_loop(&shared, &stop)))
        } else {
            None
        };
        Ok(LocalIndexService {
            shared,
            pipeline: Mutex::new(pipeline),
            compactor_stop,
            compactor_thread,
        })
    }

    /// The options this service was created with.
    pub fn options(&self) -> &IndexOptions {
        &self.shared.options
    }

    /// Run one maintenance pass (plan → off-lock merge → swap →
    /// deferred vacuum) synchronously on the calling thread — what the
    /// background thread does every interval. Useful with
    /// `auto_compact(false)` and in tests that need determinism.
    pub fn maintain(&self) {
        maintenance_pass(&self.shared);
    }

    /// Swap the writer's storage backend. The default is the real
    /// filesystem; chaos drills install a
    /// [`gas_chaos::ChaosStorage`] here to inject faults under a live
    /// service.
    pub fn set_storage(&self, storage: Arc<dyn Storage>) {
        self.shared.writer.lock().expect("writer lock poisoned").set_storage(storage);
    }

    /// [`IndexService::commit_wait`] with the options' [`RetryPolicy`]:
    /// transient failures — overload sheds and storage I/O faults — are
    /// retried under bounded exponential backoff with deterministic
    /// jitter; anything else returns immediately. When the budget runs
    /// out the last transient error is wrapped in
    /// [`IndexError::RetryExhausted`].
    ///
    /// Safe to retry by construction: a door shed leaves the staged
    /// batch untouched, and a failed persist leaves the commit applied
    /// in memory with the file marked dirty — the writer-level commit
    /// issued before each retry re-persists that state (an empty commit
    /// heals, it never re-stages).
    pub fn commit_wait_retry(&self) -> IndexResult<CommitSummary> {
        let policy = self.shared.options.retry;
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<IndexError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = policy.delay(attempt - 1);
                gas_obs::counter("gas_retry_backoff_micros_total").add(delay.as_micros() as u64);
                std::thread::sleep(delay);
            }
            gas_obs::counter("gas_retry_attempts_total").inc();
            // A dirty writer with nothing staged means a previous
            // persist failed mid-commit; heal directly at the writer —
            // the service's empty-commit fast path would skip the
            // re-persist. Checked and committed under one lock hold so
            // a concurrent add_batch can't slip a batch past the
            // pipeline's ordering.
            let healed = {
                let mut writer = self.shared.writer.lock().expect("writer lock poisoned");
                if writer.staged_samples() == 0
                    && writer.staged_deletes() == 0
                    && writer.needs_persist()
                {
                    Some(writer.commit())
                } else {
                    None
                }
            };
            let result = match healed {
                Some(result) => result,
                None => self.commit().and_then(|ticket| ticket.wait()),
            };
            match result {
                Ok(summary) => {
                    if attempt > 0 {
                        gas_obs::counter("gas_retry_success_total").inc();
                    }
                    return Ok(summary);
                }
                Err(e @ (IndexError::Io(_) | IndexError::Overloaded { .. })) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        gas_obs::counter("gas_retry_exhausted_total").inc();
        Err(IndexError::RetryExhausted {
            attempts,
            last: last.map(|e| e.to_string()).unwrap_or_else(|| "no error recorded".into()),
        })
    }

    /// [`IndexService::query_paged`] that degrades instead of failing
    /// on transient conditions: an overload shed yields an empty page
    /// set, a stale cursor restarts the scan from the first page of a
    /// fresh snapshot, a transient storage fault yields empty pages —
    /// each flagged in [`DegradedBatch::causes`] and counted under
    /// `gas_degraded_*`. Caller mistakes (malformed queries, signer
    /// mismatches) still surface as errors.
    pub fn query_paged_degraded(
        &self,
        queries: &[Vec<u64>],
        req: &PageRequest,
    ) -> IndexResult<DegradedBatch> {
        let mut causes = DegradedCauses::default();
        let pages = match self.query_paged(queries, req) {
            Ok(pages) => pages,
            Err(IndexError::StaleCursor { .. }) => {
                causes.stale_cursor += 1;
                gas_obs::counter("gas_degraded_stale_cursor_total").inc();
                // Restart against a fresh snapshot; a failure of the
                // restarted scan degrades like a first-try failure.
                let restarted = PageRequest { cursor: None, ..*req };
                match self.query_paged(queries, &restarted) {
                    Ok(pages) => pages,
                    Err(IndexError::Overloaded { .. }) => {
                        causes.overloaded += 1;
                        gas_obs::counter("gas_degraded_overloaded_total").inc();
                        Vec::new()
                    }
                    Err(IndexError::Io(_)) => {
                        causes.storage += 1;
                        gas_obs::counter("gas_degraded_storage_total").inc();
                        Vec::new()
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(IndexError::Overloaded { .. }) => {
                causes.overloaded += 1;
                gas_obs::counter("gas_degraded_overloaded_total").inc();
                Vec::new()
            }
            Err(IndexError::Io(_)) => {
                causes.storage += 1;
                gas_obs::counter("gas_degraded_storage_total").inc();
                Vec::new()
            }
            Err(e) => return Err(e),
        };
        let degraded = causes.any();
        if degraded {
            gas_obs::counter("gas_degraded_queries_total").inc();
        }
        Ok(DegradedBatch { pages, degraded, causes })
    }
}

impl Drop for LocalIndexService {
    fn drop(&mut self) {
        self.compactor_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.compactor_thread.take() {
            let _ = handle.join();
        }
        // The pipeline mutex field drops after this, closing the job
        // channel and joining signer + sealer threads.
    }
}

impl IndexService for LocalIndexService {
    fn create(options: IndexOptions) -> IndexResult<Self> {
        LocalIndexService::from_writer(options.open_writer()?, options)
    }

    fn add_batch(&self, samples: Vec<(String, Vec<u64>)>) -> IndexResult<Range<u32>> {
        let mut writer = self.shared.writer.lock().expect("writer lock poisoned");
        let first = writer.id_bound();
        for (name, values) in samples {
            writer.add(name, values)?;
        }
        Ok(first..writer.id_bound())
    }

    fn delete(&self, id: u32) -> IndexResult<()> {
        self.shared.writer.lock().expect("writer lock poisoned").delete(id)
    }

    fn commit(&self) -> IndexResult<CommitTicket> {
        // The writer lock is held across take + submit so pipeline
        // sequence order equals id-assignment order — the sealer relies
        // on it to keep generations and the id high-water mark aligned.
        let mut writer = self.shared.writer.lock().expect("writer lock poisoned");
        if writer.staged_samples() == 0 && writer.staged_deletes() == 0 {
            return Ok(CommitTicket::ready(Ok(CommitSummary {
                generation: writer.generation(),
                sealed_segment: None,
                rows_added: 0,
                deletes_applied: 0,
            })));
        }
        if self.shared.commit_metrics.depth() >= self.shared.options.max_pending_commits {
            // Refused at the door: nothing was taken, the staged batch
            // stays intact for a later commit.
            self.shared.commit_metrics.reject();
            return Err(IndexError::Overloaded {
                class: "commit".into(),
                context: format!(
                    "{} commits already in flight (bound {})",
                    self.shared.commit_metrics.depth(),
                    self.shared.options.max_pending_commits
                ),
            });
        }
        let batch = writer.take_staged();
        self.shared.commit_metrics.accept();
        let ticket = self
            .pipeline
            .lock()
            .expect("pipeline lock poisoned")
            .submit(batch, self.shared.options.commit_deadline);
        Ok(ticket)
    }

    fn query_paged(&self, queries: &[Vec<u64>], req: &PageRequest) -> IndexResult<Vec<QueryPage>> {
        let metrics = &self.shared.query_metrics;
        if metrics.depth() >= self.shared.options.max_concurrent_queries {
            metrics.reject();
            return Err(IndexError::Overloaded {
                class: "query".into(),
                context: format!(
                    "{} queries already in flight (bound {})",
                    metrics.depth(),
                    self.shared.options.max_concurrent_queries
                ),
            });
        }
        metrics.accept();
        let started = Instant::now();
        let result = (|| {
            let reader = match req.cursor {
                Some(cursor) => self.shared.pinned_snapshot(cursor.generation())?,
                None => self.shared.snapshot(),
            };
            QueryEngine::snapshot(reader).query_page_batch(queries, req)
        })();
        metrics.finish(started.elapsed(), result.is_ok());
        result
    }

    fn snapshot(&self) -> IndexReader {
        self.shared.snapshot()
    }

    fn stats(&self) -> ServiceStats {
        let (generation, segments, live_samples) = {
            let writer = self.shared.writer.lock().expect("writer lock poisoned");
            (writer.generation(), writer.segment_stats().len(), writer.live_samples())
        };
        ServiceStats {
            commit: self.shared.commit_metrics.snapshot(),
            query: self.shared.query_metrics.snapshot(),
            compact: *self.shared.compact_stats.lock().expect("compact stats lock poisoned"),
            generation,
            segments,
            live_samples,
        }
    }
}

/// The background maintenance thread: one pass per interval until the
/// service drops.
fn compactor_loop(shared: &ServiceShared, stop: &AtomicBool) {
    let interval = shared.options.compact_interval;
    while !stop.load(Ordering::Relaxed) {
        maintenance_pass(shared);
        // Sleep in small slices so a dropping service never waits a
        // full interval for the join.
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::Relaxed) {
            let slice = (interval - slept).min(Duration::from_millis(2));
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One maintenance pass: plan and begin a compaction under the writer
/// lock, build the merged segments *off* the lock (serving continues),
/// swap atomically, then run — or defer — the file vacuum.
fn maintenance_pass(shared: &ServiceShared) {
    // Degraded mode: under commit pressure the maintenance thread backs
    // off entirely — no compaction, no vacuum — so the serving path
    // never queues behind a merge for the writer lock.
    if shared.commit_metrics.depth() >= shared.options.compact_pause_depth {
        bump(shared, |s| s.paused_passes += 1);
        gas_obs::counter("gas_compact_paused_passes_total").inc();
        return;
    }
    let compactor =
        Compactor::new(*shared.options.compaction()).expect("policy validated at create");
    let begun = {
        let _plan_span = gas_obs::span("compact", "plan");
        let mut writer = shared.writer.lock().expect("writer lock poisoned");
        let plan = compactor.plan(&writer.segment_stats());
        writer.begin_compaction(plan)
    };
    match begun {
        Ok(None) => {}
        Err(_) => bump(shared, |s| s.failed_passes += 1),
        Ok(Some(task)) => {
            let built_result = {
                let _build_span = gas_obs::span("compact", "build");
                task.build()
            };
            match built_result {
                Err(_) => bump(shared, |s| s.failed_passes += 1),
                Ok(built) => {
                    let applied = {
                        let _swap_span = gas_obs::span("compact", "swap");
                        shared.writer.lock().expect("writer lock poisoned").apply_compaction(built)
                    };
                    match applied {
                        Err(_) => bump(shared, |s| s.failed_passes += 1),
                        Ok(None) => bump(shared, |s| s.stale_passes += 1),
                        Ok(Some(summary)) => {
                            bump(shared, |s| {
                                s.passes += 1;
                                s.groups_merged += summary.groups_merged as u64;
                                s.segments_compacted += (summary.segments_before
                                    - summary.segments_after.min(summary.segments_before))
                                    as u64;
                                s.tombstones_purged += summary.tombstones_purged as u64;
                                s.rows_written += summary.rows_written as u64;
                            });
                            *shared.pending_vacuum.lock().expect("vacuum lock poisoned") =
                                Some(summary.generation);
                        }
                    }
                }
            }
        }
    }
    run_or_defer_vacuum(shared);
}

/// Run the owed post-compaction vacuum if every reader of a pre-swap
/// generation has dropped; otherwise count a deferral and try again
/// next pass. The service's own pinned-snapshot cache releases its
/// pre-swap generations here (their cursors turn stale, typed); only
/// *external* readers defer the vacuum.
fn run_or_defer_vacuum(shared: &ServiceShared) {
    let Some(swap_generation) = *shared.pending_vacuum.lock().expect("vacuum lock poisoned") else {
        return;
    };
    {
        let mut pinned = shared.pinned.lock().expect("pinned lock poisoned");
        pinned.retain(|&generation, _| generation >= swap_generation);
    }
    let pre_swap_reader_alive = {
        let mut issued = shared.issued.lock().expect("issued lock poisoned");
        issued.retain(|(_, weak)| weak.strong_count() > 0);
        issued.iter().any(|&(generation, _)| generation < swap_generation)
    };
    if pre_swap_reader_alive {
        bump(shared, |s| s.vacuums_deferred += 1);
        return;
    }
    let report: IndexResult<VacuumReport> = {
        let _vacuum_span = gas_obs::span("compact", "vacuum");
        shared.writer.lock().expect("writer lock poisoned").vacuum()
    };
    *shared.pending_vacuum.lock().expect("vacuum lock poisoned") = None;
    if let Ok(report) = report {
        if report.rewritten {
            bump(shared, |s| {
                s.vacuums_run += 1;
                s.vacuum_bytes_reclaimed += report.bytes_reclaimed;
            });
        }
    }
}

fn bump(shared: &ServiceShared, f: impl FnOnce(&mut CompactionStats)) {
    f(&mut shared.compact_stats.lock().expect("compact stats lock poisoned"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryOptions;

    fn config() -> IndexConfig {
        IndexConfig::default().with_signature_len(64).with_threshold(0.5)
    }

    fn family(start: u64, len: u64) -> Vec<u64> {
        (start..start + len).collect()
    }

    /// `count` samples in two overlapping families, as an add_batch
    /// payload with names unique under `tag`.
    fn batch(tag: &str, count: usize, salt: u64) -> Vec<(String, Vec<u64>)> {
        (0..count)
            .map(|i| {
                let base = if i % 2 == 0 { 0 } else { 10_000 };
                (format!("{tag}_{i}"), family(base + salt * 7 + i as u64 * 13, 400))
            })
            .collect()
    }

    fn answers(reader: IndexReader, probe: &[u64]) -> Vec<crate::query::Neighbor> {
        QueryEngine::snapshot(reader)
            .query(probe, &QueryOptions { top_k: 8, ..Default::default() })
            .unwrap()
    }

    #[test]
    fn pipelined_commits_match_serial_and_order_generations() {
        let opts = IndexOptions::from_config(config()).with_auto_compact(false);
        let mut writer = opts.open_writer().unwrap();
        let service = opts.serve().unwrap();
        let base_generation = service.stats().generation;

        let mut tickets = Vec::new();
        for b in 0..5u64 {
            for (name, values) in batch("b", 12, b) {
                writer.add(name.clone(), values.clone()).unwrap();
                service.add_batch(vec![(name, values)]).unwrap();
            }
            writer.commit().unwrap();
            tickets.push(service.commit().unwrap());
        }
        let mut last_generation = base_generation;
        for ticket in tickets {
            let summary = ticket.wait().unwrap();
            assert!(summary.generation > last_generation, "generations strictly ordered");
            last_generation = summary.generation;
        }

        let probe = family(0, 400);
        assert_eq!(
            answers(service.snapshot(), &probe),
            answers(writer.reader(), &probe),
            "pipelined commits must answer bit-identically to serial commits"
        );
        let stats = service.stats();
        assert_eq!(stats.commit.completed, 5);
        assert_eq!(stats.commit.shed, 0);
        assert!(stats.commit.latency.count() == 5);
    }

    #[test]
    fn empty_commit_resolves_immediately_without_a_generation_bump() {
        let service = IndexOptions::from_config(config()).serve().unwrap();
        let before = service.stats().generation;
        let summary = service.commit_wait().unwrap();
        assert_eq!(summary.rows_added, 0);
        assert_eq!(summary.generation, before);
        assert_eq!(service.stats().commit.accepted, 0, "empty commits never enter the pipeline");
    }

    #[test]
    fn zero_deadline_sheds_every_batch_with_a_typed_error() {
        let service = IndexOptions::from_config(config())
            .with_commit_deadline(Some(Duration::ZERO))
            .with_auto_compact(false)
            .serve()
            .unwrap();
        service.add_batch(batch("shed", 6, 0)).unwrap();
        let err = service.commit().unwrap().wait().unwrap_err();
        assert!(matches!(err, IndexError::Overloaded { ref class, .. } if class == "commit"));
        let stats = service.stats();
        assert_eq!(stats.commit.shed, 1);
        assert_eq!(stats.commit.queue_depth, 0, "a shed batch releases its queue slot");
        // The shed batch's ids leak (never reused) and nothing sealed:
        // the index still serves, empty, and stays consistent.
        assert_eq!(service.stats().live_samples, 0);
        assert!(service.query_paged(&[family(0, 400)], &PageRequest::new(4)).unwrap()[0]
            .hits
            .is_empty());
    }

    #[test]
    fn commit_queue_bound_sheds_at_the_door_and_keeps_the_batch_staged() {
        // One signer + a signing-heavy first batch keeps the pipeline
        // busy while the second commit arrives.
        let service = IndexOptions::from_config(config())
            .with_signer_threads(1)
            .with_max_pending_commits(1)
            .with_auto_compact(false)
            .serve()
            .unwrap();
        service.add_batch(batch("big", 256, 0)).unwrap();
        let ticket = service.commit().unwrap();
        service.add_batch(batch("second", 2, 1)).unwrap();
        let err = service.commit().unwrap_err();
        assert!(matches!(err, IndexError::Overloaded { ref class, .. } if class == "commit"));
        ticket.wait().unwrap();
        // Nothing was lost: the refused batch is still staged and the
        // next commit seals it.
        let summary = service.commit_wait().unwrap();
        assert_eq!(summary.rows_added, 2);
        assert!(service.stats().commit.shed >= 1);
    }

    #[test]
    fn background_compaction_swaps_under_live_readers_and_defers_vacuum() {
        let dir = std::env::temp_dir().join(format!("gas_svc_compact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("served.gas");
        let _ = std::fs::remove_file(&path);
        // auto_compact off: maintenance passes are driven explicitly so
        // every phase of the swap is observable deterministically.
        let service =
            IndexOptions::from_config(config()).with_auto_compact(false).serve_at(&path).unwrap();
        for b in 0..5u64 {
            service.add_batch(batch("seg", 8, b)).unwrap();
            service.commit_wait().unwrap();
        }
        service.delete(1).unwrap();
        service.delete(9).unwrap();
        service.commit_wait().unwrap();

        let probe = family(0, 400);
        let pinned = service.snapshot();
        let pinned_generation = pinned.generation();
        let before = answers(pinned.clone(), &probe);

        service.maintain();
        let stats = service.stats();
        assert!(stats.compact.passes >= 1, "the size-tiered plan must fire on 5 equal segments");
        assert!(stats.compact.tombstones_purged >= 2);
        assert!(stats.compact.vacuums_deferred >= 1, "vacuum must wait for the pre-swap reader");
        assert_eq!(stats.compact.vacuums_run, 0);
        assert!(stats.generation > pinned_generation, "the swap bumped the generation");

        // The pre-swap reader still answers from its pinned snapshot,
        // bit-identically, while new snapshots see the merged shape.
        assert_eq!(answers(pinned.clone(), &probe), before);
        assert_eq!(pinned.generation(), pinned_generation);
        assert_eq!(answers(service.snapshot(), &probe), before, "merges never change answers");
        assert!(service.stats().segments < 5);

        drop(pinned);
        let len_before_vacuum = std::fs::metadata(&path).unwrap().len();
        service.maintain();
        let stats = service.stats();
        assert_eq!(stats.compact.vacuums_run, 1, "last pre-swap reader dropped: vacuum runs");
        assert!(stats.compact.vacuum_bytes_reclaimed > 0);
        assert!(std::fs::metadata(&path).unwrap().len() < len_before_vacuum);
        assert_eq!(answers(service.snapshot(), &probe), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn idle_vacuum_is_a_true_noop() {
        let dir = std::env::temp_dir().join(format!("gas_svc_vacuum_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idle.gas");
        let _ = std::fs::remove_file(&path);
        let opts = IndexOptions::from_config(config());
        let mut writer = opts.create_writer_at(&path).unwrap();
        for (name, values) in batch("v", 4, 0) {
            writer.add(name, values).unwrap();
        }
        writer.commit().unwrap();

        // First vacuum may rewrite (the pre-commit manifest block is
        // dead); afterwards the file is a minimal image.
        writer.vacuum().unwrap();
        let generation = writer.generation();
        let bytes = std::fs::read(&path).unwrap();
        let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();

        let report = writer.vacuum().unwrap();
        assert_eq!(report, VacuumReport { bytes_reclaimed: 0, rewritten: false });
        assert_eq!(writer.generation(), generation, "idle vacuum must not bump the generation");
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "idle vacuum must not touch the file");
        assert_eq!(
            std::fs::metadata(&path).unwrap().modified().unwrap(),
            mtime,
            "idle vacuum must not churn mtime"
        );

        // In-memory writers have no file: vacuum is always the no-op.
        let mut mem = opts.open_writer().unwrap();
        mem.add("a".to_string(), family(0, 50)).unwrap();
        mem.commit().unwrap();
        assert_eq!(mem.vacuum().unwrap(), VacuumReport::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cursors_resume_within_retention_and_go_stale_typed_beyond_it() {
        let service = IndexOptions::from_config(config())
            .with_auto_compact(false)
            .with_snapshot_retention(1)
            .serve()
            .unwrap();
        service.add_batch(batch("page", 12, 0)).unwrap();
        service.commit_wait().unwrap();

        let probe = family(0, 400);
        let req = PageRequest::new(3);
        let first = service.query_paged(std::slice::from_ref(&probe), &req).unwrap();
        let cursor = first[0].next_cursor.expect("more than one page");

        // Same generation: the cursor resumes and pages tile.
        let second =
            service.query_paged(std::slice::from_ref(&probe), &req.with_cursor(cursor)).unwrap();
        assert!(!second[0].hits.is_empty());
        assert_eq!(first[0].total_candidates, second[0].total_candidates);

        // Two commits later (retention 1), the pinned generation is
        // evicted: the cursor fails typed instead of mixing rankings.
        service.add_batch(batch("later", 4, 1)).unwrap();
        service.commit_wait().unwrap();
        service.query_paged(std::slice::from_ref(&probe), &PageRequest::new(3)).unwrap();
        let err = service
            .query_paged(std::slice::from_ref(&probe), &req.with_cursor(cursor))
            .unwrap_err();
        assert!(matches!(err, IndexError::StaleCursor { .. }));
        let stats = service.stats();
        assert!(stats.query.failed >= 1);
        assert!(stats.query.accepted >= 4);
    }

    #[test]
    fn service_pages_tile_the_one_shot_ranking() {
        let service = IndexOptions::from_config(config()).with_auto_compact(false).serve().unwrap();
        service.add_batch(batch("tile", 10, 0)).unwrap();
        service.commit_wait().unwrap();
        let probe = family(0, 400);

        let all = service
            .query_paged(std::slice::from_ref(&probe), &PageRequest::new(usize::MAX >> 1))
            .unwrap();
        let mut tiled = Vec::new();
        let mut req = PageRequest::new(2);
        loop {
            let page = service.query_paged(std::slice::from_ref(&probe), &req).unwrap();
            tiled.extend(page[0].hits.clone());
            match page[0].next_cursor {
                Some(next) => req = PageRequest::new(2).with_cursor(next),
                None => break,
            }
        }
        assert_eq!(tiled, all[0].hits, "pages must tile the one-shot ranking exactly");
    }

    #[test]
    fn query_concurrency_bound_sheds_typed() {
        let service = IndexOptions::from_config(config())
            .with_max_concurrent_queries(1)
            .with_auto_compact(false)
            .serve()
            .unwrap();
        service.add_batch(batch("q", 4, 0)).unwrap();
        service.commit_wait().unwrap();
        // Two threads hammer the one query slot; whichever loses the
        // race sheds, so the class-level shed counter must move. Every
        // non-shed answer must still be a real answer.
        let service = Arc::new(service);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let worker = |service: Arc<LocalIndexService>, gate: Arc<std::sync::Barrier>| {
            std::thread::spawn(move || {
                gate.wait();
                for _ in 0..2_000 {
                    if service.stats().query.shed >= 1 {
                        break;
                    }
                    match service.query_paged(&[family(0, 400)], &PageRequest::new(4)) {
                        Ok(pages) => assert!(!pages[0].hits.is_empty()),
                        Err(IndexError::Overloaded { ref class, .. }) => {
                            assert_eq!(class, "query")
                        }
                        Err(other) => panic!("unexpected error under contention: {other}"),
                    }
                }
            })
        };
        let a = worker(Arc::clone(&service), Arc::clone(&gate));
        let b = worker(Arc::clone(&service), Arc::clone(&gate));
        a.join().unwrap();
        b.join().unwrap();
        assert!(
            service.stats().query.shed >= 1,
            "two threads racing one query slot must shed at least once"
        );
    }

    /// The pre-0.7 constructors still compile and behave identically to
    /// the `IndexOptions` paths they now shim over.
    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_shims_still_work() {
        let cfg = config();
        let sets = vec![family(0, 300), family(50, 300), family(9_000, 100)];
        let collection =
            gas_core::indicator::SampleCollection::from_sorted_sets(sets.clone()).unwrap();

        let old = crate::build::SketchIndex::build(&collection, &cfg).unwrap();
        let new = IndexOptions::from_config(cfg).build_index(&collection).unwrap();
        assert_eq!(old, new);

        let mut old_writer = IndexWriter::create(&cfg).unwrap();
        let mut new_writer = IndexOptions::from_config(cfg).open_writer().unwrap();
        for (i, s) in sets.iter().enumerate() {
            old_writer.add(format!("s{i}"), s.clone()).unwrap();
            new_writer.add(format!("s{i}"), s.clone()).unwrap();
        }
        old_writer.commit().unwrap();
        new_writer.commit().unwrap();

        let opts = QueryOptions { top_k: 3, ..Default::default() };
        assert_eq!(
            QueryEngine::for_reader(old_writer.reader()).query(&sets[0], &opts).unwrap(),
            QueryEngine::snapshot(new_writer.reader()).query(&sets[0], &opts).unwrap()
        );
        assert_eq!(
            QueryEngine::for_reader_with_collection(old_writer.reader(), &collection)
                .query(&sets[0], &opts)
                .unwrap(),
            QueryEngine::snapshot_with_collection(new_writer.reader(), &collection)
                .query(&sets[0], &opts)
                .unwrap()
        );
    }

    #[test]
    fn auto_compactor_thread_compacts_without_blocking_serving() {
        let service = IndexOptions::from_config(config())
            .with_compact_interval(Duration::from_millis(1))
            .serve()
            .unwrap();
        let probe = family(0, 400);
        let mut reference = None;
        for b in 0..6u64 {
            service.add_batch(batch("live", 6, b)).unwrap();
            service.commit_wait().unwrap();
            let got =
                service.query_paged(std::slice::from_ref(&probe), &PageRequest::new(64)).unwrap();
            if b == 5 {
                reference = Some(got);
            }
        }
        // Wait (bounded) for the background thread to land a pass.
        for _ in 0..500 {
            if service.stats().compact.passes >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = service.stats();
        assert!(stats.compact.passes >= 1, "the background compactor never fired");
        assert!(stats.segments < 6);
        let after =
            service.query_paged(std::slice::from_ref(&probe), &PageRequest::new(64)).unwrap();
        assert_eq!(
            after[0].hits,
            reference.unwrap()[0].hits,
            "background compaction must never change answers"
        );
    }

    // ---- chaos drills: retry, degraded serving, compaction pause ----

    fn service_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gas_service_{tag}_{}_{n}.gidx", std::process::id()))
    }

    fn fast_retry(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(400),
            jitter_seed: 11,
        }
    }

    #[test]
    fn commit_wait_retry_heals_a_one_shot_storage_fault() {
        let _chaos = crate::chaos_testing::chaos_on();
        use gas_chaos::{ChaosStorage, FaultKind, FaultPlan};
        let path = service_path("retryheal");
        let service = IndexOptions::from_config(config())
            .with_auto_compact(false)
            .with_retry_policy(fast_retry(3))
            .serve_at(&path)
            .unwrap();
        service.add_batch(batch("a", 6, 0)).unwrap();
        service.set_storage(Arc::new(ChaosStorage::over_fs(
            FaultPlan::seeded(3, 0).script(0, FaultKind::TornWrite),
        )));
        // Attempt 1 tears the persist; the retry's writer-level commit
        // re-persists the in-memory state (the scripted fault is spent).
        let summary = service.commit_wait_retry().expect("one torn write is survivable");
        assert!(summary.generation >= 1);
        assert_eq!(service.stats().live_samples, 6);
        drop(service);
        // The healed file reopens at the full state.
        let reader = IndexReader::open(&path).unwrap();
        assert_eq!(reader.n_live(), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_wait_retry_exhausts_typed_under_persistent_faults() {
        let _chaos = crate::chaos_testing::chaos_on();
        use gas_chaos::{ChaosStorage, FaultKind, FaultPlan};
        let path = service_path("retryout");
        let service = IndexOptions::from_config(config())
            .with_auto_compact(false)
            .with_retry_policy(fast_retry(3))
            .serve_at(&path)
            .unwrap();
        service.add_batch(batch("b", 4, 0)).unwrap();
        // Every storage op faults: the budget must run out, typed.
        service.set_storage(Arc::new(ChaosStorage::over_fs(
            FaultPlan::seeded(5, 1000).with_kinds(&[FaultKind::IoError]),
        )));
        let err = service.commit_wait_retry().unwrap_err();
        match err {
            IndexError::RetryExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(!last.is_empty());
            }
            other => panic!("expected RetryExhausted, got {other}"),
        }
        // Clearing the fault heals: the commit is already applied in
        // memory, the next retry loop persists it.
        service.set_storage(Arc::new(gas_chaos::RealFs));
        let summary = service.commit_wait_retry().unwrap();
        assert_eq!(summary.deletes_applied, 0);
        assert_eq!(service.stats().live_samples, 4);
        drop(service);
        assert_eq!(IndexReader::open(&path).unwrap().n_live(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn degraded_queries_absorb_overload_with_an_explicit_flag() {
        let service = IndexOptions::from_config(config())
            .with_auto_compact(false)
            .with_max_concurrent_queries(1)
            .serve()
            .unwrap();
        service.add_batch(batch("d", 4, 0)).unwrap();
        service.commit_wait().unwrap();
        let probe = family(0, 400);

        // Unpressured: the degraded wrapper is a transparent pass-through.
        let calm = service
            .query_paged_degraded(std::slice::from_ref(&probe), &PageRequest::new(4))
            .unwrap();
        assert!(!calm.degraded);
        assert!(!calm.pages[0].hits.is_empty());

        // Occupy the one query slot: the next query sheds, and the
        // degraded wrapper turns that into empty pages + the flag.
        service.shared.query_metrics.accept();
        let shed = service
            .query_paged_degraded(std::slice::from_ref(&probe), &PageRequest::new(4))
            .unwrap();
        assert!(shed.degraded);
        assert_eq!(shed.causes.overloaded, 1);
        assert!(shed.pages.is_empty());
        service.shared.query_metrics.finish(Duration::ZERO, true);

        // Caller mistakes still surface as errors, not degradation.
        let err = service
            .query_paged_degraded(std::slice::from_ref(&probe), &PageRequest::new(0))
            .unwrap_err();
        assert!(matches!(err, IndexError::InvalidQuery(_)));
    }

    #[test]
    fn degraded_queries_restart_stale_cursors_from_a_fresh_snapshot() {
        let service = IndexOptions::from_config(config())
            .with_auto_compact(false)
            .with_snapshot_retention(1)
            .serve()
            .unwrap();
        service.add_batch(batch("s", 12, 0)).unwrap();
        service.commit_wait().unwrap();
        let probe = family(0, 400);
        let req = PageRequest::new(3);
        let first = service.query_paged(std::slice::from_ref(&probe), &req).unwrap();
        let cursor = first[0].next_cursor.expect("more than one page");

        // Evict the pinned generation (retention 1, two commits later).
        service.add_batch(batch("t", 4, 1)).unwrap();
        service.commit_wait().unwrap();
        service.query_paged(std::slice::from_ref(&probe), &PageRequest::new(3)).unwrap();

        let resumed = service
            .query_paged_degraded(std::slice::from_ref(&probe), &req.with_cursor(cursor))
            .unwrap();
        assert!(resumed.degraded, "a restarted scan is not the page the cursor asked for");
        assert_eq!(resumed.causes.stale_cursor, 1);
        assert!(!resumed.pages[0].hits.is_empty(), "the restart answers from a fresh snapshot");
        assert!(resumed.pages[0].next_cursor.is_none() || resumed.pages[0].hits.len() == 3);
    }

    #[test]
    fn compaction_pauses_under_commit_pressure_and_resumes() {
        let service = IndexOptions::from_config(config())
            .with_auto_compact(false)
            .with_compact_pause_depth(1)
            .serve()
            .unwrap();
        // Simulate one in-flight commit occupying the queue slot.
        service.shared.commit_metrics.accept();
        service.maintain();
        assert_eq!(service.stats().compact.paused_passes, 1, "pressure pauses the pass");
        assert_eq!(service.stats().compact.passes, 0);
        service.shared.commit_metrics.finish(Duration::ZERO, true);
        service.maintain();
        assert_eq!(service.stats().compact.paused_passes, 1, "pressure gone, passes resume");
    }
}
