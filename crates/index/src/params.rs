//! LSH banding parameters derived from a target Jaccard threshold.
//!
//! A k-mins MinHash signature of length `s = b · r` is sliced into `b`
//! bands of `r` rows. Two signatures land in the same bucket of band `i`
//! iff they agree on all `r` rows of that band, which for Jaccard
//! similarity `j` happens with probability `j^r`; across all bands the
//! candidate-collision probability is the classic S-curve
//! `P(j) = 1 − (1 − j^r)^b`, whose inflection sits near
//! `t ≈ (1/b)^(1/r)`. [`LshParams::for_threshold`] picks the `(b, r)`
//! split of a given signature length whose inflection is closest to the
//! requested threshold.

use serde::{Deserialize, Serialize};

use crate::error::{IndexError, IndexResult};

/// Banding parameters: `bands` bands of `rows` rows each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LshParams {
    bands: usize,
    rows: usize,
}

impl LshParams {
    /// Explicit banding parameters (both must be positive).
    pub fn new(bands: usize, rows: usize) -> IndexResult<Self> {
        if bands == 0 || rows == 0 {
            return Err(IndexError::InvalidConfig(format!(
                "bands and rows must be positive (got {bands} × {rows})"
            )));
        }
        Ok(LshParams { bands, rows })
    }

    /// Every `(bands, rows)` split with `b · r = signature_len`, ordered
    /// by increasing `rows` (so from the flattest S-curve to the
    /// sharpest). This is the candidate set [`Self::for_threshold`]
    /// searches and the one an autotuner grid-searches over.
    pub fn divisor_splits(signature_len: usize) -> IndexResult<Vec<Self>> {
        if signature_len == 0 {
            return Err(IndexError::InvalidConfig("signature length must be positive".into()));
        }
        Ok((1..=signature_len)
            .filter(|rows| signature_len % rows == 0)
            .map(|rows| LshParams { bands: signature_len / rows, rows })
            .collect())
    }

    /// Choose `(bands, rows)` for a signature of length `signature_len`
    /// so the banding S-curve's inflection `(1/b)^(1/r)` is as close as
    /// possible to `threshold`. Every candidate split uses the whole
    /// signature (`b · r = signature_len`, over the divisors of the
    /// length), so estimator precision is never silently discarded.
    pub fn for_threshold(signature_len: usize, threshold: f64) -> IndexResult<Self> {
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(IndexError::InvalidConfig(format!(
                "threshold must lie strictly between 0 and 1 (got {threshold})"
            )));
        }
        let splits = Self::divisor_splits(signature_len)?;
        // On ties the flattest split (fewest rows per band) wins, matching
        // the enumeration order.
        let mut best = splits[0];
        let mut best_err = (best.threshold() - threshold).abs();
        for candidate in &splits[1..] {
            let err = (candidate.threshold() - threshold).abs();
            if err < best_err {
                best = *candidate;
                best_err = err;
            }
        }
        Ok(best)
    }

    /// Number of bands `b`.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows per band `r`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Required signature length `b · r`.
    pub fn signature_len(&self) -> usize {
        self.bands * self.rows
    }

    /// The S-curve inflection `(1/b)^(1/r)`: pairs with Jaccard
    /// similarity near this value collide in some band with probability
    /// close to 1/2.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    /// Probability that two sets of Jaccard similarity `j` share at least
    /// one band bucket: `1 − (1 − j^r)^b`.
    pub fn collision_probability(&self, j: f64) -> f64 {
        let j = j.clamp(0.0, 1.0);
        1.0 - (1.0 - j.powi(self.rows as i32)).powi(self.bands as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(LshParams::new(0, 4).is_err());
        assert!(LshParams::new(4, 0).is_err());
        assert!(LshParams::for_threshold(0, 0.5).is_err());
        assert!(LshParams::for_threshold(128, 0.0).is_err());
        assert!(LshParams::for_threshold(128, 1.0).is_err());
        assert!(LshParams::for_threshold(128, -3.0).is_err());
    }

    #[test]
    fn divisor_splits_cover_exactly_the_divisors() {
        let splits = LshParams::divisor_splits(12).unwrap();
        let pairs: Vec<(usize, usize)> = splits.iter().map(|p| (p.bands(), p.rows())).collect();
        assert_eq!(pairs, vec![(12, 1), (6, 2), (4, 3), (3, 4), (2, 6), (1, 12)]);
        for p in &splits {
            assert_eq!(p.signature_len(), 12);
        }
        assert!(LshParams::divisor_splits(0).is_err());
    }

    #[test]
    fn for_threshold_uses_the_whole_signature() {
        for t in [0.1, 0.3, 0.5, 0.7, 0.9] {
            for len in [64usize, 128, 192, 256] {
                let p = LshParams::for_threshold(len, t).unwrap();
                assert_eq!(p.signature_len(), len, "t={t}, len={len}");
            }
        }
    }

    #[test]
    fn for_threshold_tracks_the_target() {
        // Higher thresholds demand more rows per band (sharper curves).
        let low = LshParams::for_threshold(256, 0.2).unwrap();
        let high = LshParams::for_threshold(256, 0.8).unwrap();
        assert!(low.rows() < high.rows(), "low={low:?}, high={high:?}");
        // The chosen inflection is the closest achievable one.
        let chosen = LshParams::for_threshold(128, 0.5).unwrap();
        for rows in 1..=128usize {
            if 128 % rows == 0 {
                let alt = LshParams::new(128 / rows, rows).unwrap();
                assert!(
                    (chosen.threshold() - 0.5).abs() <= (alt.threshold() - 0.5).abs() + 1e-12,
                    "alt {alt:?} beats chosen {chosen:?}"
                );
            }
        }
    }

    #[test]
    fn collision_probability_is_an_s_curve() {
        let p = LshParams::for_threshold(128, 0.5).unwrap();
        assert_eq!(p.collision_probability(0.0), 0.0);
        assert!((p.collision_probability(1.0) - 1.0).abs() < 1e-12);
        // Monotone increasing.
        let mut prev = 0.0;
        for i in 0..=20 {
            let v = p.collision_probability(i as f64 / 20.0);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
        // Steep around the inflection: well above the threshold the
        // collision probability is near 1, well below it near 0.
        assert!(p.collision_probability(p.threshold() + 0.25) > 0.9);
        assert!(p.collision_probability((p.threshold() - 0.25).max(0.0)) < 0.35);
    }
}
