//! Error types for the sketch-index subsystem.

use std::fmt;

/// Result alias for index operations.
pub type IndexResult<T> = Result<T, IndexError>;

/// Errors produced by index construction, persistence and querying.
#[derive(Debug)]
pub enum IndexError {
    /// The index configuration is unusable (zero bands, threshold out of
    /// range, signature/band mismatch, ...).
    InvalidConfig(String),
    /// A query or rerank request is malformed (missing collection, id out
    /// of range, ...).
    InvalidQuery(String),
    /// An I/O error while reading or writing a container file.
    Io(std::io::Error),
    /// The file does not start with the container magic.
    BadMagic,
    /// The container declares a format version this reader cannot parse.
    UnsupportedVersion(u32),
    /// The file is shorter than its header or section table declares.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Tag of the failing section (or "header").
        section: String,
    },
    /// A required section is absent from the container.
    MissingSection(String),
    /// The bytes parse but violate a structural invariant.
    Corrupt {
        /// Which invariant failed.
        context: String,
    },
    /// A segmented (v3) container holds no intact manifest generation —
    /// nothing to fall back to.
    NoLiveGeneration(String),
    /// A segmented (v3) container holds checksum-valid blocks of a kind
    /// this build does not know — bytes from a newer build, not
    /// corruption. Read-only opens fall back to the newest understood
    /// manifest; read-write opens refuse, because the writer's
    /// truncate-then-append protocol would destroy the foreign blocks.
    ForeignBlocks {
        /// The unknown block kind tag, printable form.
        kind: String,
    },
    /// A writer operation referenced a global sample id that is not a
    /// live committed sample (never assigned, still staged, or already
    /// deleted).
    UnknownSample {
        /// The offending global id.
        id: u32,
        /// Why the id is not usable.
        context: String,
    },
    /// A query was signed under a different scheme (signer kind, length
    /// or seed) than the index's — the signatures are not comparable.
    SignerMismatch {
        /// The index's scheme, as `SignatureScheme::describe` prints it.
        index_scheme: String,
        /// The query's scheme.
        query_scheme: String,
    },
    /// The serving frontend shed this request: a bounded queue was full,
    /// a per-batch deadline expired before the work was picked up, or the
    /// service is shutting down. Overload shedding is admission control,
    /// not corruption — the caller may retry once pressure drains.
    Overloaded {
        /// Request class that was shed ("commit", "query", "compact").
        class: String,
        /// Which limit tripped (queue bound, deadline, shutdown).
        context: String,
    },
    /// A pagination cursor references a snapshot generation the service
    /// no longer pins (or a different index entirely). The client must
    /// restart the scan from the first page of a fresh snapshot.
    StaleCursor {
        /// Generation encoded in the cursor.
        cursor_generation: u64,
        /// Oldest generation still answerable.
        snapshot_generation: u64,
    },
    /// A pagination cursor token failed to parse.
    InvalidCursor(String),
    /// A retried operation kept failing until its retry budget ran out.
    /// `last` formats the final error; every attempt's failure was
    /// transient (storage fault or overload), never corruption.
    RetryExhausted {
        /// Attempts performed (first try included).
        attempts: u32,
        /// Display of the error the final attempt produced.
        last: String,
    },
    /// An error from the core (signature) layer.
    Core(gas_core::CoreError),
    /// An error from the sparse (rerank) layer.
    Sparse(gas_sparse::SparseError),
    /// An error from the simulated distributed runtime.
    Sim(gas_dstsim::SimError),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::InvalidConfig(msg) => write!(f, "invalid index configuration: {msg}"),
            IndexError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            IndexError::Io(e) => write!(f, "container I/O error: {e}"),
            IndexError::BadMagic => write!(f, "not a gas-index container (bad magic)"),
            IndexError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            IndexError::Truncated { context } => {
                write!(f, "container truncated while reading {context}")
            }
            IndexError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            IndexError::MissingSection(tag) => write!(f, "missing container section {tag}"),
            IndexError::Corrupt { context } => write!(f, "corrupt container: {context}"),
            IndexError::NoLiveGeneration(context) => {
                write!(f, "no readable manifest generation: {context}")
            }
            IndexError::ForeignBlocks { kind } => {
                write!(
                    f,
                    "container holds blocks of unknown kind {kind:?} (a newer format \
                     revision); open it read-only or upgrade this build"
                )
            }
            IndexError::UnknownSample { id, context } => {
                write!(f, "sample id {id} is not a live committed sample: {context}")
            }
            IndexError::SignerMismatch { index_scheme, query_scheme } => write!(
                f,
                "signer mismatch: index signed with {index_scheme}, query with {query_scheme}"
            ),
            IndexError::Overloaded { class, context } => {
                write!(f, "service overloaded, {class} request shed: {context}")
            }
            IndexError::StaleCursor { cursor_generation, snapshot_generation } => write!(
                f,
                "stale page cursor: generation {cursor_generation} is no longer pinned \
                 (oldest answerable generation is {snapshot_generation}); restart the scan"
            ),
            IndexError::InvalidCursor(token) => {
                write!(f, "malformed page cursor token {token:?}")
            }
            IndexError::RetryExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts; last error: {last}")
            }
            IndexError::Core(e) => write!(f, "core error: {e}"),
            IndexError::Sparse(e) => write!(f, "sparse algebra error: {e}"),
            IndexError::Sim(e) => write!(f, "distributed runtime error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            IndexError::Core(e) => Some(e),
            IndexError::Sparse(e) => Some(e),
            IndexError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io(e)
    }
}

impl From<gas_core::CoreError> for IndexError {
    fn from(e: gas_core::CoreError) -> Self {
        IndexError::Core(e)
    }
}

impl From<gas_sparse::SparseError> for IndexError {
    fn from(e: gas_sparse::SparseError) -> Self {
        IndexError::Sparse(e)
    }
}

impl From<gas_dstsim::SimError> for IndexError {
    fn from(e: gas_dstsim::SimError) -> Self {
        IndexError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(IndexError::InvalidConfig("zero bands".into()).to_string().contains("zero bands"));
        assert!(IndexError::BadMagic.to_string().contains("magic"));
        assert!(IndexError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(IndexError::Truncated { context: "SIGS".into() }.to_string().contains("SIGS"));
        assert!(IndexError::ChecksumMismatch { section: "BUCK".into() }
            .to_string()
            .contains("BUCK"));
        assert!(IndexError::MissingSection("META".into()).to_string().contains("META"));
        let e = IndexError::SignerMismatch {
            index_scheme: "oph(len=128)".into(),
            query_scheme: "kmins(len=128)".into(),
        };
        assert!(e.to_string().contains("oph") && e.to_string().contains("kmins"));
        let e = IndexError::Overloaded { class: "commit".into(), context: "queue full".into() };
        assert!(e.to_string().contains("commit") && e.to_string().contains("queue full"));
        let e = IndexError::StaleCursor { cursor_generation: 3, snapshot_generation: 7 };
        assert!(e.to_string().contains('3') && e.to_string().contains('7'));
        assert!(IndexError::InvalidCursor("xx".into()).to_string().contains("xx"));
        let e = IndexError::RetryExhausted { attempts: 4, last: "disk sneezed".into() };
        assert!(e.to_string().contains('4') && e.to_string().contains("disk sneezed"));
        let e: IndexError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: IndexError = gas_dstsim::SimError::InvalidWorldSize(0).into();
        assert!(e.to_string().contains("runtime"));
        let e: IndexError =
            gas_core::CoreError::InvalidConfig("sketch size must be positive".into()).into();
        assert!(e.to_string().contains("sketch size"));
        let e: IndexError = gas_sparse::SparseError::ShapeMismatch { context: "x".into() }.into();
        assert!(e.to_string().contains("sparse"));
    }
}
