//! # gas-index — persistent MinHash–LSH sketch index + top-k query engine
//!
//! The paper's pipeline answers *all-pairs* similarity; this crate turns
//! the same sketches into a *served* workload, the Mash/BIGSI-style
//! sketch-database shape the paper benchmarks against (Table II): build
//! an index, persist it, shard it, grow and shrink it in place, and
//! answer batched top-k similarity queries against it. Layers:
//!
//! * [`params`] — LSH banding parameters `(b, r)` derived from a target
//!   Jaccard threshold (the `1 − (1 − j^r)^b` S-curve);
//! * [`segment`] / [`lifecycle`] — the segmented index lifecycle:
//!   immutable sealed [`segment::Segment`]s of signatures + bucket
//!   tables, written by an [`lifecycle::IndexWriter`] (stage → `commit`
//!   seals a segment; deletes become tombstones), read through atomic
//!   [`lifecycle::IndexReader`] snapshots, and rolled up by a
//!   size-tiered [`lifecycle::Compactor`] that drops tombstoned rows;
//! * [`build`] — the [`build::SketchIndex`]: the one-shot monolithic
//!   convenience wrapper (writer + single commit) for static corpora;
//! * [`container`] — a self-describing, versioned, checksummed binary
//!   container with a bounds-checked reader — persistence without
//!   serde. Versions 1/2 are single-index section tables; version 3 is
//!   the segmented append-only block stream whose generation-numbered
//!   manifest is written last, so a crash mid-commit falls back to the
//!   previous generation;
//! * [`query`] / [`dist`] — the batched top-k engine: probe buckets in
//!   every live segment, score candidates in parallel (rayon map +
//!   reduce), merge across segments deterministically (tombstones
//!   honored, score ties keep the lowest sample id), optionally re-rank
//!   exactly over the `gas_sparse` popcount-AND kernel; the distributed
//!   variant shards bands *and* signature rows per segment across
//!   `gas_dstsim` ranks (each rank stores `~rows/p` of every segment
//!   and fetches only the rows its probes touch) and merges per-rank
//!   partial top-k lists into answers bit-identical to the single-rank
//!   multi-segment reader.
//!
//! Signatures come from one of two signers ([`SignerKind`]): classical
//! k-mins (`O(len·|set|)` hashes) or one-permutation hashing with
//! rotation densification (`O(|set| + len)`); the container records the
//! signer so persisted indexes stay self-describing.
//!
//! Construction goes through one builder, [`service::IndexOptions`]:
//!
//! ```
//! use gas_core::indicator::SampleCollection;
//! use gas_index::{IndexOptions, QueryEngine, QueryOptions};
//!
//! let collection = SampleCollection::from_sorted_sets(vec![
//!     (0..500u64).collect(),
//!     (50..550u64).collect(),
//!     (10_000..10_500u64).collect(),
//! ]).unwrap();
//! let index = IndexOptions::new().build_index(&collection).unwrap();
//! let engine = QueryEngine::with_collection(&index, &collection);
//! let opts = QueryOptions { top_k: 2, rerank_exact: true, ..Default::default() };
//! let hits = engine.query(collection.sample(0), &opts).unwrap();
//! assert_eq!(hits[0].id, 0);          // a sample is its own best match
//! assert_eq!(hits[1].id, 1);          // its 90%-overlap twin is next
//! assert!(hits[1].score > 0.8);
//! ```
//!
//! Growing corpora use the explicit lifecycle instead — commits cost
//! only the delta, snapshots are atomic, answers stay bit-identical to
//! a full rebuild:
//!
//! ```
//! use gas_index::{IndexOptions, QueryEngine, QueryOptions};
//!
//! let mut writer = IndexOptions::new().open_writer().unwrap();
//! writer.add("base", (0..500u64).collect()).unwrap();
//! writer.commit().unwrap();                       // seals segment 1
//! writer.add("twin", (50..550u64).collect()).unwrap();
//! writer.commit().unwrap();                       // seals segment 2
//! let engine = QueryEngine::snapshot(writer.reader());
//! let opts = QueryOptions { top_k: 2, ..Default::default() };
//! let hits = engine.query(&(0..500u64).collect::<Vec<_>>(), &opts).unwrap();
//! assert_eq!(hits[0].id, 0);
//! assert_eq!(hits[1].id, 1);
//! ```
//!
//! Served workloads wrap the lifecycle in the [`service`] layer: a
//! [`service::LocalIndexService`] pipelines commits (stage → sign →
//! seal overlapped across threads, generations strictly ordered),
//! compacts in the background under live readers, bounds its queues
//! with typed [`IndexError::Overloaded`] shedding, and answers
//! [`query::PageRequest`]-paginated queries with stable cursors:
//!
//! ```
//! use gas_index::{IndexOptions, IndexService, PageRequest};
//!
//! let service = IndexOptions::new().serve().unwrap();
//! service.add_batch(vec![
//!     ("base".into(), (0..500u64).collect()),
//!     ("twin".into(), (50..550u64).collect()),
//! ]).unwrap();
//! service.commit_wait().unwrap();
//! let pages = service
//!     .query_paged(&[(0..500u64).collect()], &PageRequest::new(1))
//!     .unwrap();
//! assert_eq!(pages[0].hits[0].id, 0);
//! assert!(pages[0].next_cursor.is_some());  // the twin is on page 2
//! ```

pub mod build;
pub mod container;
pub mod dist;
pub mod error;
pub mod lifecycle;
pub mod params;
pub mod pipeline;
pub mod query;
pub mod segment;
pub mod service;

pub use build::{BandBuckets, IndexConfig, SketchIndex};
pub use container::{Container, ContainerWriter};
pub use dist::{
    dist_query_batch, dist_query_batch_stats, dist_query_reader_batch,
    dist_query_reader_batch_planned, dist_query_reader_batch_replicated,
    dist_query_reader_batch_stats, dist_query_reader_batch_stats_per_segment,
    dist_query_reader_page, install_placement, DegradedReport, DistQueryStats,
    PlacementInstallStats, PlannedShards, ReaderShards, SegmentExchangeStats, SegmentPlacement,
    SignatureShard,
};
pub use error::{IndexError, IndexResult};
pub use gas_chaos::{ChaosStorage, FaultKind, FaultPlan, RealFs, RetryPolicy, Storage};
pub use gas_core::minhash::SignerKind;
pub use lifecycle::{
    CommitSummary, CompactionPolicy, CompactionSummary, Compactor, IndexReader, IndexWriter,
    RecoveryReport, VacuumReport,
};
pub use params::LshParams;
pub use pipeline::CommitTicket;
pub use query::{
    exact_top_k, Neighbor, PageCursor, PageRequest, QueryEngine, QueryOptions, QueryPage,
};
pub use segment::{Segment, SegmentStats};
pub use service::{
    CompactionStats, DegradedBatch, DegradedCauses, IndexOptions, IndexService, LatencyHistogram,
    LocalIndexService, RequestClassStats, ServiceStats,
};

/// Serialize tests that flip the process-global `gas_chaos` switch, so
/// parallel non-chaos tests never observe injection and parallel chaos
/// tests never turn each other's faults off mid-run.
#[cfg(test)]
pub(crate) mod chaos_testing {
    use std::sync::{Mutex, MutexGuard};

    static GATE: Mutex<()> = Mutex::new(());

    /// RAII guard: injection enabled while held, disabled on drop.
    pub(crate) struct ChaosOn(#[allow(dead_code)] MutexGuard<'static, ()>);

    impl Drop for ChaosOn {
        fn drop(&mut self) {
            gas_chaos::set_enabled(false);
        }
    }

    pub(crate) fn chaos_on() -> ChaosOn {
        let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        gas_chaos::set_enabled(true);
        ChaosOn(guard)
    }
}
