//! # gas-index — persistent MinHash–LSH sketch index + top-k query engine
//!
//! The paper's pipeline answers *all-pairs* similarity; this crate turns
//! the same sketches into a *served* workload, the Mash/BIGSI-style
//! sketch-database shape the paper benchmarks against (Table II): build
//! an index once, persist it, shard it, and answer batched top-k
//! similarity queries against it. Four layers:
//!
//! * [`params`] — LSH banding parameters `(b, r)` derived from a target
//!   Jaccard threshold (the `1 − (1 − j^r)^b` S-curve);
//! * [`build`] — the [`build::SketchIndex`]: k-mins MinHash signatures
//!   from `gas_core::minhash` plus flattened, key-sorted bucket tables
//!   per band;
//! * [`container`] — a self-describing, versioned, checksummed binary
//!   container (magic + section table + little-endian pods) with a
//!   bounds-checked reader — persistence without serde;
//! * [`query`] / [`dist`] — the batched top-k engine: probe buckets,
//!   score candidates in parallel (rayon map + reduce), optionally
//!   re-rank exactly over the `gas_sparse` popcount-AND kernel; the
//!   distributed variant shards bands *and* the signature matrix across
//!   `gas_dstsim` ranks (each rank stores `~n/p` signature rows and
//!   fetches only the rows its probes touch) and merges per-rank
//!   partial top-k lists into bit-identical answers.
//!
//! Signatures come from one of two signers ([`SignerKind`]): classical
//! k-mins (`O(len·|set|)` hashes) or one-permutation hashing with
//! rotation densification (`O(|set| + len)`); the container records the
//! signer so persisted indexes stay self-describing.
//!
//! ```
//! use gas_core::indicator::SampleCollection;
//! use gas_index::{IndexConfig, QueryEngine, QueryOptions, SketchIndex};
//!
//! let collection = SampleCollection::from_sorted_sets(vec![
//!     (0..500u64).collect(),
//!     (50..550u64).collect(),
//!     (10_000..10_500u64).collect(),
//! ]).unwrap();
//! let index = SketchIndex::build(&collection, &IndexConfig::default()).unwrap();
//! let engine = QueryEngine::with_collection(&index, &collection);
//! let opts = QueryOptions { top_k: 2, rerank_exact: true, ..Default::default() };
//! let hits = engine.query(collection.sample(0), &opts).unwrap();
//! assert_eq!(hits[0].id, 0);          // a sample is its own best match
//! assert_eq!(hits[1].id, 1);          // its 90%-overlap twin is next
//! assert!(hits[1].score > 0.8);
//! ```

pub mod build;
pub mod container;
pub mod dist;
pub mod error;
pub mod params;
pub mod query;

pub use build::{BandBuckets, IndexConfig, SketchIndex};
pub use container::{Container, ContainerWriter};
pub use dist::{dist_query_batch, dist_query_batch_stats, DistQueryStats, SignatureShard};
pub use error::{IndexError, IndexResult};
pub use gas_core::minhash::SignerKind;
pub use params::LshParams;
pub use query::{exact_top_k, Neighbor, QueryEngine, QueryOptions};
