//! The commit pipeline: **stage → sign → seal**, overlapped across
//! threads.
//!
//! `IndexWriter::commit()` is serial: it signs the staged batch (the
//! CPU-heavy half — MinHash over every staged set) and then seals it
//! (bucket-table build + manifest append) before the next batch can even
//! start signing. The pipeline splits the two halves along the thread
//! boundary the `crossbeam` channel stand-in provides:
//!
//! * the **service** stages a batch and [`CommitPipeline::submit`]s it:
//!   the batch is assigned a strictly increasing sequence number *under
//!   the writer lock*, so sequence order equals global-id order;
//! * a pool of **signer** threads pull jobs off a shared channel and
//!   sign them lock-free (each holds a copy of the index's
//!   `SignatureScheme`) — commit N+1 signs while commit N seals;
//! * one **sealer** thread re-orders signed batches back into sequence
//!   order (a `BTreeMap` holdback buffer) and applies them one at a
//!   time under the writer lock, so manifest generations stay strictly
//!   ordered no matter which signer finishes first.
//!
//! Admission control lives at both ends: the service bounds the number
//! of in-flight commits *before* staging is taken (nothing is lost on a
//! queue-full shed), and each job carries an optional **deadline**
//! checked at signer pickup — a job that waited too long is shed with a
//! typed [`IndexError::Overloaded`], its reserved ids leak (ids are
//! never reused, so a gap is indistinguishable from a
//! deleted-and-compacted row), and the sealer still advances past its
//! sequence number so later commits are never stuck.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use gas_core::minhash::SignatureScheme;

use crate::error::{IndexError, IndexResult};
use crate::lifecycle::{CommitSummary, IndexWriter, StagedBatch};
use crate::segment::SegmentRow;
use crate::service::ClassMetrics;

/// The receipt of a pipelined commit: resolves to the same
/// [`CommitSummary`] a serial `commit()` would have returned, or to a
/// typed error if the commit was shed or the seal failed.
#[derive(Debug)]
pub struct CommitTicket {
    rx: Receiver<IndexResult<CommitSummary>>,
}

impl CommitTicket {
    /// A ticket already resolved to `result` (the service's fast path
    /// for empty commits, which never enter the pipeline).
    pub(crate) fn ready(result: IndexResult<CommitSummary>) -> Self {
        let (tx, rx) = unbounded();
        let _ = tx.send(result);
        CommitTicket { rx }
    }

    /// Block until the commit seals (or is shed) and return its outcome.
    pub fn wait(self) -> IndexResult<CommitSummary> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(IndexError::Overloaded {
                class: "commit".into(),
                context: "pipeline stopped before the commit sealed".into(),
            })
        })
    }
}

/// One batch travelling from the service to a signer.
struct SignJob {
    seq: u64,
    batch: StagedBatch,
    enqueued: Instant,
    deadline: Option<Duration>,
    ticket: Sender<IndexResult<CommitSummary>>,
}

/// One signed (or shed) batch travelling from a signer to the sealer.
enum SignedCommit {
    Signed {
        rows: Vec<SegmentRow>,
        deletes: BTreeSet<u32>,
        enqueued: Instant,
        ticket: Sender<IndexResult<CommitSummary>>,
    },
    Shed {
        rows: usize,
        context: String,
        ticket: Sender<IndexResult<CommitSummary>>,
    },
}

struct SealMsg {
    seq: u64,
    commit: SignedCommit,
}

/// The running pipeline: signer pool + sealer, torn down (channels
/// closed, threads joined) on drop.
#[derive(Debug)]
pub(crate) struct CommitPipeline {
    job_tx: Option<Sender<SignJob>>,
    next_seq: u64,
    signers: Vec<JoinHandle<()>>,
    sealer: Option<JoinHandle<()>>,
}

impl CommitPipeline {
    /// Start `signer_threads` signers and the sealer over `writer`.
    pub(crate) fn start(
        writer: Arc<Mutex<IndexWriter>>,
        scheme: SignatureScheme,
        signer_threads: usize,
        metrics: Arc<ClassMetrics>,
    ) -> Self {
        let (job_tx, job_rx) = unbounded::<SignJob>();
        let (seal_tx, seal_rx) = unbounded::<SealMsg>();
        // The mpsc-backed stand-in `Receiver` is `Send` but not `Sync`:
        // the pool shares it behind a mutex, held only while receiving.
        let job_rx = Arc::new(Mutex::new(job_rx));
        let signers = (0..signer_threads.max(1))
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let seal_tx = seal_tx.clone();
                std::thread::spawn(move || signer_loop(&job_rx, &seal_tx, scheme))
            })
            .collect();
        drop(seal_tx); // sealer exits once every signer has
        let sealer = std::thread::spawn(move || sealer_loop(&seal_rx, &writer, &metrics));
        CommitPipeline { job_tx: Some(job_tx), next_seq: 0, signers, sealer: Some(sealer) }
    }

    /// Enqueue a taken batch. Must be called under the same writer lock
    /// that took the batch, so sequence order equals id order.
    pub(crate) fn submit(
        &mut self,
        batch: StagedBatch,
        deadline: Option<Duration>,
    ) -> CommitTicket {
        let (tx, rx) = unbounded();
        let job =
            SignJob { seq: self.next_seq, batch, enqueued: Instant::now(), deadline, ticket: tx };
        self.next_seq += 1;
        if let Some(job_tx) = &self.job_tx {
            // A send can only fail after shutdown; the dropped ticket
            // sender then resolves `wait()` to the typed shutdown error.
            let _ = job_tx.send(job);
        }
        CommitTicket { rx }
    }
}

impl Drop for CommitPipeline {
    fn drop(&mut self) {
        // Closing the job channel drains the signers; their seal senders
        // drop with them, which drains the sealer.
        self.job_tx = None;
        for handle in self.signers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.sealer.take() {
            let _ = handle.join();
        }
    }
}

/// Pull jobs until the service closes the channel, signing each batch
/// lock-free (or shedding it if its deadline expired while queued).
fn signer_loop(
    jobs: &Mutex<Receiver<SignJob>>,
    seal_tx: &Sender<SealMsg>,
    scheme: SignatureScheme,
) {
    loop {
        let job = {
            let rx = jobs.lock().expect("signer channel lock poisoned");
            rx.recv()
        };
        let Ok(job) = job else { return };
        let SignJob { seq, batch, enqueued, deadline, ticket } = job;
        let commit = if deadline.is_some_and(|d| enqueued.elapsed() > d) {
            SignedCommit::Shed {
                rows: batch.samples.len(),
                context: format!(
                    "batch waited past its {:?} deadline before signing",
                    deadline.unwrap_or_default()
                ),
                ticket,
            }
        } else {
            let sign_started = Instant::now();
            let mut sign_span = gas_obs::span("commit", "sign");
            let sets: Vec<&[u64]> = batch.samples.iter().map(|s| s.values.as_slice()).collect();
            let signatures = scheme.sign_batch(&sets);
            let rows: Vec<SegmentRow> = batch
                .samples
                .iter()
                .zip(signatures)
                .enumerate()
                .map(|(i, (sample, signature))| SegmentRow {
                    global_id: batch.base + i as u32,
                    signature,
                    set_size: sample.values.len() as u64,
                    name: sample.name.clone(),
                })
                .collect();
            sign_span.annotate("rows", rows.len() as f64);
            drop(sign_span);
            gas_obs::histogram("gas_commit_sign_micros")
                .record_micros(sign_started.elapsed().as_micros() as u64);
            SignedCommit::Signed { rows, deletes: batch.deletes, enqueued, ticket }
        };
        if seal_tx.send(SealMsg { seq, commit }).is_err() {
            return; // sealer gone: shutdown
        }
    }
}

/// Re-order signed batches into submission order and seal them one at a
/// time under the writer lock.
fn sealer_loop(seal_rx: &Receiver<SealMsg>, writer: &Mutex<IndexWriter>, metrics: &ClassMetrics) {
    let mut next_seq = 0u64;
    let mut holdback: BTreeMap<u64, SignedCommit> = BTreeMap::new();
    while let Ok(msg) = seal_rx.recv() {
        holdback.insert(msg.seq, msg.commit);
        while let Some(commit) = holdback.remove(&next_seq) {
            next_seq += 1;
            let mut guard = writer.lock().expect("writer lock poisoned");
            match commit {
                SignedCommit::Signed { rows, deletes, enqueued, ticket } => {
                    let seal_started = Instant::now();
                    let result = {
                        let _seal_span = gas_obs::span("commit", "seal");
                        guard.commit_signed_rows(rows, deletes)
                    };
                    drop(guard);
                    gas_obs::histogram("gas_commit_seal_micros")
                        .record_micros(seal_started.elapsed().as_micros() as u64);
                    metrics.finish(enqueued.elapsed(), result.is_ok());
                    let _ = ticket.send(result);
                }
                SignedCommit::Shed { rows, context, ticket } => {
                    guard.abandon_in_flight(rows);
                    drop(guard);
                    metrics.shed();
                    let _ = ticket
                        .send(Err(IndexError::Overloaded { class: "commit".into(), context }));
                }
            }
        }
    }
}
