//! Immutable index segments — the unit of the LSM-style index lifecycle.
//!
//! A [`Segment`] is one sealed batch of samples: signatures, metadata and
//! per-band bucket tables, exactly the shape the monolithic
//! `SketchIndex` used to hold, plus a mapping from *local* rows (the
//! dense `0..n` of this segment) to *global* sample ids (assigned once
//! by the `IndexWriter` and never reused). Bucket tables store local
//! rows, so a segment is self-contained: it can be built, persisted,
//! checksummed and sharded without knowing about any other segment.
//! Once sealed a segment never changes — deletes are tombstones held by
//! the manifest, and compaction *replaces* segments instead of editing
//! them.

use std::collections::BTreeMap;
use std::sync::Arc;

use gas_core::minhash::{MinHashSignature, SignatureScheme};

use crate::build::{band_key, BandBuckets};
use crate::error::{IndexError, IndexResult};
use crate::params::LshParams;

/// One row of a segment under construction: everything compaction (or a
/// future ingestion tier) must carry over for a sample — its global id,
/// its already-computed signature, and its metadata. Compaction merges
/// rows from several segments *without re-signing*: signatures depend
/// only on sample content and scheme, so they move verbatim.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Global sample id (assigned at `add` time, stable for life).
    pub global_id: u32,
    /// The sample's min-wise signature under the index scheme.
    pub signature: MinHashSignature,
    /// Original set cardinality.
    pub set_size: u64,
    /// Sample name.
    pub name: String,
}

/// An immutable, sealed segment of the index.
#[derive(Debug, Clone)]
pub struct Segment {
    id: u64,
    scheme: SignatureScheme,
    params: LshParams,
    global_ids: Vec<u32>,
    signatures: Vec<MinHashSignature>,
    set_sizes: Vec<u64>,
    names: Vec<String>,
    bands: Vec<BandBuckets>,
}

impl Segment {
    /// Seal a segment from raw sets: sign the batch under the (already
    /// fixed) scheme and bucket every local row once per band. `sets`
    /// must be sorted, deduplicated value sets, parallel to `global_ids`
    /// and `names`; `global_ids` must be strictly increasing.
    pub(crate) fn sign_and_build(
        id: u64,
        scheme: SignatureScheme,
        params: LshParams,
        global_ids: Vec<u32>,
        names: Vec<String>,
        sets: &[&[u64]],
    ) -> IndexResult<Self> {
        let set_sizes = sets.iter().map(|s| s.len() as u64).collect();
        let signatures = scheme.sign_batch(sets);
        let bands = build_bands(&params, &signatures);
        Segment::from_parts(id, scheme, params, global_ids, signatures, set_sizes, names, bands)
    }

    /// Seal a segment from already-signed rows (the compaction path:
    /// merged inputs hand their rows over verbatim, bucket tables are
    /// rebuilt over the new local numbering). `rows` must be strictly
    /// increasing in `global_id`.
    pub(crate) fn from_rows(
        id: u64,
        scheme: SignatureScheme,
        params: LshParams,
        rows: Vec<SegmentRow>,
    ) -> IndexResult<Self> {
        let mut global_ids = Vec::with_capacity(rows.len());
        let mut signatures = Vec::with_capacity(rows.len());
        let mut set_sizes = Vec::with_capacity(rows.len());
        let mut names = Vec::with_capacity(rows.len());
        for row in rows {
            global_ids.push(row.global_id);
            signatures.push(row.signature);
            set_sizes.push(row.set_size);
            names.push(row.name);
        }
        let bands = build_bands(&params, &signatures);
        Segment::from_parts(id, scheme, params, global_ids, signatures, set_sizes, names, bands)
    }

    /// Reassemble a segment from its parts (the persistence reader
    /// path), validating every structural invariant.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        id: u64,
        scheme: SignatureScheme,
        params: LshParams,
        global_ids: Vec<u32>,
        signatures: Vec<MinHashSignature>,
        set_sizes: Vec<u64>,
        names: Vec<String>,
        bands: Vec<BandBuckets>,
    ) -> IndexResult<Self> {
        if params.signature_len() != scheme.len() {
            return Err(IndexError::Corrupt {
                context: format!(
                    "banding wants {}-long signatures but the scheme produces {}",
                    params.signature_len(),
                    scheme.len()
                ),
            });
        }
        if signatures.iter().any(|s| s.len() != scheme.len()) {
            return Err(IndexError::Corrupt {
                context: "stored signature length differs from the scheme".into(),
            });
        }
        let n = signatures.len();
        if set_sizes.len() != n || names.len() != n || global_ids.len() != n {
            return Err(IndexError::Corrupt {
                context: format!(
                    "{n} signatures but {} global ids, {} set sizes and {} names",
                    global_ids.len(),
                    set_sizes.len(),
                    names.len()
                ),
            });
        }
        if global_ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(IndexError::Corrupt {
                context: "segment global ids are not strictly increasing".into(),
            });
        }
        if bands.len() != params.bands() {
            return Err(IndexError::Corrupt {
                context: format!("{} band tables for {} bands", bands.len(), params.bands()),
            });
        }
        if bands.iter().any(|b| b.ids().iter().any(|&local| local as usize >= n)) {
            return Err(IndexError::Corrupt { context: "bucket row out of range".into() });
        }
        Ok(Segment { id, scheme, params, global_ids, signatures, set_sizes, names, bands })
    }

    /// Segment id — unique within one index lifecycle, assigned at seal
    /// time, referenced by manifest generations.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The signature scheme shared by every segment of an index.
    pub fn scheme(&self) -> &SignatureScheme {
        &self.scheme
    }

    /// The banding parameters shared by every segment of an index.
    pub fn params(&self) -> &LshParams {
        &self.params
    }

    /// Number of rows stored (tombstoned rows included until compaction
    /// drops them).
    pub fn n_rows(&self) -> usize {
        self.signatures.len()
    }

    /// Whether the segment stores no rows.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// The global sample ids of this segment's rows, strictly increasing.
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }

    /// The global id of local row `local`.
    pub fn global_id(&self, local: usize) -> u32 {
        self.global_ids[local]
    }

    /// The local row holding global id `id`, if this segment stores it.
    pub fn local_of(&self, id: u32) -> Option<usize> {
        self.global_ids.binary_search(&id).ok()
    }

    /// Signature of local row `local`.
    pub fn signature(&self, local: usize) -> &MinHashSignature {
        &self.signatures[local]
    }

    /// All signatures, local-row-ordered.
    pub fn signatures(&self) -> &[MinHashSignature] {
        &self.signatures
    }

    /// The raw signature words of local row `local`, or `None` past the
    /// end — the checked form shard extraction strides with.
    pub fn signature_words(&self, local: usize) -> Option<&[u64]> {
        self.signatures.get(local).map(|s| s.values())
    }

    /// Original set cardinalities, local-row-ordered.
    pub fn set_sizes(&self) -> &[u64] {
        &self.set_sizes
    }

    /// Sample names, local-row-ordered.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The bucket table of `band` (bucket members are local rows).
    pub fn band(&self, band: usize) -> &BandBuckets {
        &self.bands[band]
    }

    /// Candidate *local rows* for a query signature, probing only the
    /// bands `band_filter` admits. Sorted and deduplicated, like the
    /// monolithic index's candidate sets.
    pub fn candidates_where<F: Fn(usize) -> bool>(
        &self,
        sig: &MinHashSignature,
        band_filter: F,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        for band in 0..self.params.bands() {
            if !band_filter(band) {
                continue;
            }
            out.extend_from_slice(self.bands[band].get(band_key(&self.params, band, sig)));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The rows of this segment as carry-over records for compaction,
    /// skipping rows whose global id `dropped` admits (tombstones).
    pub(crate) fn live_rows<F: Fn(u32) -> bool>(&self, dropped: F) -> Vec<SegmentRow> {
        (0..self.n_rows())
            .filter(|&local| !dropped(self.global_ids[local]))
            .map(|local| SegmentRow {
                global_id: self.global_ids[local],
                signature: self.signatures[local].clone(),
                set_size: self.set_sizes[local],
                name: self.names[local].clone(),
            })
            .collect()
    }

    /// Structural equality ignoring the segment id (used by the
    /// `SketchIndex` convenience wrapper, whose v1/v2 container format
    /// predates segment ids).
    pub(crate) fn same_content(&self, other: &Segment) -> bool {
        self.scheme == other.scheme
            && self.params == other.params
            && self.global_ids == other.global_ids
            && self.signatures == other.signatures
            && self.set_sizes == other.set_sizes
            && self.names == other.names
            && self.bands == other.bands
    }
}

impl PartialEq for Segment {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.same_content(other)
    }
}

/// Summary of one segment as seen through a reader snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment id.
    pub segment_id: u64,
    /// Rows stored in the segment.
    pub rows: usize,
    /// Rows still live (not tombstoned) under the snapshot.
    pub live_rows: usize,
}

/// Shared by every segment builder: one key-sorted bucket table per
/// band, bucket members are local rows in ascending order.
fn build_bands(params: &LshParams, signatures: &[MinHashSignature]) -> Vec<BandBuckets> {
    (0..params.bands())
        .map(|band| {
            let mut map: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
            for (local, sig) in signatures.iter().enumerate() {
                map.entry(band_key(params, band, sig)).or_default().push(local as u32);
            }
            BandBuckets::from_map(map)
        })
        .collect()
}

/// Convenience alias: segments are always shared behind `Arc` (sealed
/// segments are immutable, so readers, writers and engines all hold the
/// same allocation).
pub type SharedSegment = Arc<Segment>;

#[cfg(test)]
mod tests {
    use super::*;
    use gas_core::minhash::SignerKind;

    fn scheme_and_params() -> (SignatureScheme, LshParams) {
        let scheme = SignatureScheme::new(32).unwrap().with_kind(SignerKind::Oph);
        let params = LshParams::for_threshold(32, 0.5).unwrap();
        (scheme, params)
    }

    #[test]
    fn sign_and_build_buckets_every_row_once_per_band() {
        let (scheme, params) = scheme_and_params();
        let sets: Vec<Vec<u64>> =
            vec![(0..200).collect(), (100..300).collect(), (10_000..10_200).collect()];
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let seg = Segment::sign_and_build(
            7,
            scheme,
            params,
            vec![4, 9, 11],
            vec!["a".into(), "b".into(), "c".into()],
            &refs,
        )
        .unwrap();
        assert_eq!(seg.id(), 7);
        assert_eq!(seg.n_rows(), 3);
        assert_eq!(seg.global_ids(), &[4, 9, 11]);
        assert_eq!(seg.local_of(9), Some(1));
        assert_eq!(seg.local_of(5), None);
        assert_eq!(seg.set_sizes(), &[200, 200, 200]);
        for band in 0..seg.params().bands() {
            let mut rows: Vec<u32> = seg.band(band).ids().to_vec();
            rows.sort_unstable();
            assert_eq!(rows, vec![0, 1, 2], "band {band}");
        }
        // Every row is a candidate of its own signature (local numbering).
        for local in 0..3usize {
            let cands = seg.candidates_where(seg.signature(local), |_| true);
            assert!(cands.contains(&(local as u32)));
        }
        // Signatures are exactly the scheme's signatures of the sets.
        for (local, set) in sets.iter().enumerate() {
            assert_eq!(seg.signature(local), &seg.scheme().sign(set));
        }
    }

    #[test]
    fn from_rows_preserves_signatures_and_rebuilds_buckets() {
        let (scheme, params) = scheme_and_params();
        let sets: Vec<Vec<u64>> = vec![(0..150).collect(), (75..225).collect()];
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let seg = Segment::sign_and_build(
            1,
            scheme,
            params,
            vec![0, 1],
            vec!["x".into(), "y".into()],
            &refs,
        )
        .unwrap();
        let rebuilt = Segment::from_rows(2, scheme, params, seg.live_rows(|_| false)).unwrap();
        assert!(rebuilt.same_content(&seg));
        assert_ne!(rebuilt, seg, "ids differ");
        // Dropping one row renumbers locals and keeps global ids.
        let pruned = Segment::from_rows(3, scheme, params, seg.live_rows(|id| id == 0)).unwrap();
        assert_eq!(pruned.global_ids(), &[1]);
        assert_eq!(pruned.signature(0), seg.signature(1));
    }

    #[test]
    fn from_parts_validates_invariants() {
        let (scheme, params) = scheme_and_params();
        let sets: Vec<Vec<u64>> = vec![(0..100).collect()];
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let seg =
            Segment::sign_and_build(1, scheme, params, vec![3], vec!["s".into()], &refs).unwrap();
        // Non-increasing global ids.
        assert!(Segment::from_parts(
            1,
            scheme,
            params,
            vec![3, 3],
            vec![seg.signature(0).clone(), seg.signature(0).clone()],
            vec![100, 100],
            vec!["s".into(), "t".into()],
            (0..params.bands()).map(|b| seg.band(b).clone()).collect(),
        )
        .is_err());
        // Mismatched metadata lengths.
        assert!(Segment::from_parts(
            1,
            scheme,
            params,
            vec![3],
            vec![seg.signature(0).clone()],
            vec![],
            vec!["s".into()],
            (0..params.bands()).map(|b| seg.band(b).clone()).collect(),
        )
        .is_err());
        // Wrong band count.
        assert!(Segment::from_parts(
            1,
            scheme,
            params,
            vec![3],
            vec![seg.signature(0).clone()],
            vec![100],
            vec!["s".into()],
            vec![],
        )
        .is_err());
    }
}
