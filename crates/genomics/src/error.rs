//! Error types for sequence parsing and k-mer extraction.

use std::fmt;

/// Result alias for genomics operations.
pub type GenomicsResult<T> = Result<T, GenomicsError>;

/// Errors produced while reading sequence data or extracting k-mers.
#[derive(Debug)]
pub enum GenomicsError {
    /// The requested k-mer length cannot be represented (must be 1..=31
    /// for the 2-bit packing used here).
    InvalidK(usize),
    /// A FASTA/FASTQ record was malformed.
    MalformedRecord {
        /// Line number (1-based) where the problem was detected.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
    /// Invalid configuration of a generator or sample operation.
    InvalidConfig(String),
}

impl fmt::Display for GenomicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomicsError::InvalidK(k) => {
                write!(f, "k-mer length {k} is not supported (must be 1..=31)")
            }
            GenomicsError::MalformedRecord { line, message } => {
                write!(f, "malformed record at line {line}: {message}")
            }
            GenomicsError::Io(e) => write!(f, "I/O error: {e}"),
            GenomicsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for GenomicsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenomicsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GenomicsError {
    fn from(e: std::io::Error) -> Self {
        GenomicsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GenomicsError::InvalidK(40).to_string().contains("40"));
        let e = GenomicsError::MalformedRecord { line: 3, message: "missing header".into() };
        assert!(e.to_string().contains("line 3"));
        let io: GenomicsError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        assert!(GenomicsError::InvalidConfig("bad".into()).to_string().contains("bad"));
    }
}
