//! Synthetic sequence and indicator-matrix generators.
//!
//! The paper evaluates on (a) real datasets we cannot redistribute here
//! and (b) synthetic indicator matrices "where each element of the
//! indicator matrix A is present with a specified probability p"
//! (Section V-A3). This module provides both kinds of synthetic input:
//!
//! * genuinely correlated genomes — a random reference, mutated
//!   derivatives at a controlled substitution rate, and simulated short
//!   reads — so Jaccard values are biologically meaningful (used by the
//!   accuracy experiments and the examples);
//! * Bernoulli indicator matrices with uniform or skewed per-column
//!   density (the paper's synthetic performance workloads; the skewed
//!   variant models the BIGSI dataset's highly variable column density).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{GenomicsError, GenomicsResult};

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Generate a uniformly random genome of `len` bases.
pub fn random_genome(len: usize, rng: &mut StdRng) -> Vec<u8> {
    (0..len).map(|_| BASES[rng.random_range(0..4usize)]).collect()
}

/// Apply substitutions to a sequence at the given per-base rate, returning
/// the mutated copy. Substitutions always change the base.
pub fn mutate(seq: &[u8], substitution_rate: f64, rng: &mut StdRng) -> Vec<u8> {
    seq.iter()
        .map(|&b| {
            if rng.random_bool(substitution_rate.clamp(0.0, 1.0)) {
                let current = BASES.iter().position(|&x| x == b).unwrap_or(0);
                BASES[(current + rng.random_range(1..4usize)) % 4]
            } else {
                b
            }
        })
        .collect()
}

/// Simulate error-free or error-prone short reads from a genome.
///
/// `coverage` is the expected number of times each base is covered;
/// `error_rate` is the per-base sequencing error probability.
pub fn simulate_reads(
    genome: &[u8],
    read_len: usize,
    coverage: f64,
    error_rate: f64,
    rng: &mut StdRng,
) -> GenomicsResult<Vec<Vec<u8>>> {
    if read_len == 0 || read_len > genome.len() {
        return Err(GenomicsError::InvalidConfig(format!(
            "read length {read_len} invalid for a genome of {} bases",
            genome.len()
        )));
    }
    if coverage <= 0.0 {
        return Err(GenomicsError::InvalidConfig("coverage must be positive".to_string()));
    }
    let n_reads = ((genome.len() as f64 * coverage) / read_len as f64).ceil() as usize;
    let mut reads = Vec::with_capacity(n_reads);
    for _ in 0..n_reads {
        let start = rng.random_range(0..=genome.len() - read_len);
        let mut read = genome[start..start + read_len].to_vec();
        if error_rate > 0.0 {
            read = mutate(&read, error_rate, rng);
        }
        reads.push(read);
    }
    Ok(reads)
}

/// Expected Jaccard similarity of the k-mer sets of a genome and a mutated
/// copy with per-base substitution rate `d` (the Mash model): a k-mer
/// survives unmutated with probability `(1 − d)^k`, and
/// `J ≈ s / (2 − s)` where `s = (1 − d)^k`.
pub fn expected_jaccard(k: usize, substitution_rate: f64) -> f64 {
    let s = (1.0 - substitution_rate).powi(k as i32);
    s / (2.0 - s)
}

/// Generate the paper's synthetic indicator matrix: `n` columns over `m`
/// possible rows, each (row, column) entry present independently with
/// probability `density`. Returns, for each column, the sorted list of
/// present row indices.
pub fn bernoulli_columns(
    m: usize,
    n: usize,
    density: f64,
    seed: u64,
) -> GenomicsResult<Vec<Vec<usize>>> {
    if !(0.0..=1.0).contains(&density) {
        return Err(GenomicsError::InvalidConfig(format!("density {density} outside [0, 1]")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let expected = (m as f64 * density).ceil() as usize + 1;
    Ok((0..n)
        .map(|_| {
            // Sample the gaps geometrically instead of testing every row —
            // equivalent to m Bernoulli trials but O(nnz).
            let mut rows = Vec::with_capacity(expected);
            if density <= 0.0 {
                return rows;
            }
            if density >= 1.0 {
                return (0..m).collect();
            }
            let mut r = 0usize;
            loop {
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let gap = (u.ln() / (1.0 - density).ln()).floor() as usize;
                r = match r.checked_add(gap) {
                    Some(v) => v,
                    None => break,
                };
                if r >= m {
                    break;
                }
                rows.push(r);
                r += 1;
            }
            rows
        })
        .collect())
}

/// Generate an indicator matrix with *skewed* per-column density: column
/// densities are log-uniformly distributed between `min_density` and
/// `max_density`. This models the BIGSI dataset's "high variability of
/// density across different columns" (Section V-B).
pub fn skewed_columns(
    m: usize,
    n: usize,
    min_density: f64,
    max_density: f64,
    seed: u64,
) -> GenomicsResult<Vec<Vec<usize>>> {
    if min_density <= 0.0 || max_density > 1.0 || min_density > max_density {
        return Err(GenomicsError::InvalidConfig(format!(
            "invalid density range [{min_density}, {max_density}]"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns = Vec::with_capacity(n);
    for j in 0..n {
        let t: f64 = rng.random();
        let density = (min_density.ln() + t * (max_density.ln() - min_density.ln())).exp();
        let col = bernoulli_columns(
            m,
            1,
            density,
            seed ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )?
        .pop()
        .expect("one column requested");
        columns.push(col);
    }
    Ok(columns)
}

/// A family of related genomes: one ancestor and `n − 1` mutated
/// descendants with per-genome substitution rates, useful for clustering
/// and accuracy experiments where the true relationships are known.
pub fn genome_family(genome_len: usize, rates: &[f64], seed: u64) -> GenomicsResult<Vec<Vec<u8>>> {
    if genome_len == 0 {
        return Err(GenomicsError::InvalidConfig("genome length must be positive".to_string()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let ancestor = random_genome(genome_len, &mut rng);
    let mut family = vec![ancestor.clone()];
    for &rate in rates {
        family.push(mutate(&ancestor, rate, &mut rng));
    }
    Ok(family)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::KmerExtractor;
    use crate::sample::KmerSample;

    #[test]
    fn random_genome_uses_only_acgt() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_genome(1000, &mut rng);
        assert_eq!(g.len(), 1000);
        assert!(g.iter().all(|b| BASES.contains(b)));
    }

    #[test]
    fn mutate_changes_roughly_rate_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_genome(20_000, &mut rng);
        let m = mutate(&g, 0.1, &mut rng);
        let diff = g.iter().zip(m.iter()).filter(|(a, b)| a != b).count();
        let frac = diff as f64 / g.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "observed substitution rate {frac}");
        // Zero rate changes nothing.
        assert_eq!(mutate(&g, 0.0, &mut rng), g);
    }

    #[test]
    fn simulate_reads_covers_genome() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_genome(2_000, &mut rng);
        let reads = simulate_reads(&g, 100, 5.0, 0.0, &mut rng).unwrap();
        assert_eq!(reads.len(), 100);
        assert!(reads.iter().all(|r| r.len() == 100));
        assert!(simulate_reads(&g, 0, 5.0, 0.0, &mut rng).is_err());
        assert!(simulate_reads(&g, 5000, 5.0, 0.0, &mut rng).is_err());
        assert!(simulate_reads(&g, 100, 0.0, 0.0, &mut rng).is_err());
    }

    #[test]
    fn expected_jaccard_matches_measured_jaccard() {
        // Mutate a genome at 1% and check the k-mer Jaccard is near the
        // Mash-model prediction.
        let mut rng = StdRng::seed_from_u64(4);
        let k = 15;
        let g = random_genome(200_000, &mut rng);
        let m = mutate(&g, 0.01, &mut rng);
        let ex = KmerExtractor::new(k).unwrap();
        let a = KmerSample::from_sequence("a", &g, &ex);
        let b = KmerSample::from_sequence("b", &m, &ex);
        let measured = a.jaccard(&b);
        let predicted = expected_jaccard(k, 0.01);
        assert!((measured - predicted).abs() < 0.05, "measured {measured}, predicted {predicted}");
    }

    #[test]
    fn expected_jaccard_monotone_in_divergence() {
        assert!(expected_jaccard(21, 0.001) > expected_jaccard(21, 0.01));
        assert!(expected_jaccard(21, 0.01) > expected_jaccard(21, 0.1));
        assert!((expected_jaccard(21, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_columns_have_expected_density() {
        let m = 100_000;
        let cols = bernoulli_columns(m, 20, 0.01, 7).unwrap();
        assert_eq!(cols.len(), 20);
        let total: usize = cols.iter().map(|c| c.len()).sum();
        let density = total as f64 / (m as f64 * 20.0);
        assert!((density - 0.01).abs() < 0.002, "density {density}");
        for c in &cols {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            assert!(c.iter().all(|&r| r < m));
        }
    }

    #[test]
    fn bernoulli_density_edge_cases() {
        assert!(bernoulli_columns(10, 2, -0.1, 1).is_err());
        assert!(bernoulli_columns(10, 2, 1.5, 1).is_err());
        let empty = bernoulli_columns(10, 2, 0.0, 1).unwrap();
        assert!(empty.iter().all(|c| c.is_empty()));
        let full = bernoulli_columns(10, 2, 1.0, 1).unwrap();
        assert!(full.iter().all(|c| c.len() == 10));
    }

    #[test]
    fn bernoulli_is_deterministic_per_seed() {
        let a = bernoulli_columns(1000, 5, 0.05, 42).unwrap();
        let b = bernoulli_columns(1000, 5, 0.05, 42).unwrap();
        let c = bernoulli_columns(1000, 5, 0.05, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_columns_vary_in_density() {
        let cols = skewed_columns(50_000, 30, 1e-4, 1e-1, 11).unwrap();
        let sizes: Vec<usize> = cols.iter().map(|c| c.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > 10 * (min + 1), "expected skew, got min={min} max={max}");
        assert!(skewed_columns(100, 2, 0.0, 0.5, 1).is_err());
        assert!(skewed_columns(100, 2, 0.5, 0.1, 1).is_err());
    }

    #[test]
    fn genome_family_sizes_and_determinism() {
        let fam = genome_family(500, &[0.01, 0.1], 9).unwrap();
        assert_eq!(fam.len(), 3);
        assert!(fam.iter().all(|g| g.len() == 500));
        let fam2 = genome_family(500, &[0.01, 0.1], 9).unwrap();
        assert_eq!(fam, fam2);
        assert!(genome_family(0, &[0.1], 9).is_err());
        // Closer mutation rate -> more similar to ancestor.
        let diff = |a: &[u8], b: &[u8]| a.iter().zip(b).filter(|(x, y)| x != y).count();
        assert!(diff(&fam[0], &fam[1]) < diff(&fam[0], &fam[2]));
    }
}
