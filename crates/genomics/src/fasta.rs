//! FASTA and FASTQ parsing and FASTA writing.
//!
//! GenomeAtScale keeps compatibility with the standard bioinformatics
//! formats so it can slot into existing pipelines (Section IV): input
//! samples arrive as FASTA files (one or more records per sample), and
//! raw sequencing reads may arrive as FASTQ. The readers here are
//! line-oriented streaming parsers over any [`std::io::BufRead`] source.

use std::io::{BufRead, Write};

use crate::error::{GenomicsError, GenomicsResult};

/// One FASTA record: an identifier, an optional description and the
/// sequence bytes (newlines removed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Sequence identifier (the first whitespace-delimited token of the
    /// header line, without the leading `>`).
    pub id: String,
    /// The rest of the header line, if any.
    pub description: Option<String>,
    /// The concatenated sequence.
    pub seq: Vec<u8>,
}

impl FastaRecord {
    /// Create a record from an id and sequence.
    pub fn new(id: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        FastaRecord { id: id.into(), description: None, seq: seq.into() }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Streaming FASTA reader.
pub struct FastaReader<R: BufRead> {
    reader: R,
    line: String,
    line_no: usize,
    pending_header: Option<String>,
    done: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        FastaReader { reader, line: String::new(), line_no: 0, pending_header: None, done: false }
    }

    /// Read all records into a vector.
    pub fn read_all(mut self) -> GenomicsResult<Vec<FastaRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    fn parse_header(header: &str) -> (String, Option<String>) {
        let body = header.trim_start_matches('>').trim_end();
        match body.split_once(char::is_whitespace) {
            Some((id, desc)) => (id.to_string(), Some(desc.trim().to_string())),
            None => (body.to_string(), None),
        }
    }

    /// Read the next record, or `None` at end of input.
    pub fn next_record(&mut self) -> GenomicsResult<Option<FastaRecord>> {
        if self.done {
            return Ok(None);
        }
        // Find the header for this record.
        let header = if let Some(h) = self.pending_header.take() {
            h
        } else {
            loop {
                self.line.clear();
                self.line_no += 1;
                if self.reader.read_line(&mut self.line)? == 0 {
                    self.done = true;
                    return Ok(None);
                }
                let trimmed = self.line.trim_end();
                if trimmed.is_empty() {
                    continue;
                }
                if let Some(stripped) = trimmed.strip_prefix('>') {
                    break format!(">{stripped}");
                }
                return Err(GenomicsError::MalformedRecord {
                    line: self.line_no,
                    message: "sequence data before any '>' header".to_string(),
                });
            }
        };
        let (id, description) = Self::parse_header(&header);
        if id.is_empty() {
            return Err(GenomicsError::MalformedRecord {
                line: self.line_no,
                message: "empty record identifier".to_string(),
            });
        }
        let mut seq = Vec::new();
        loop {
            self.line.clear();
            self.line_no += 1;
            if self.reader.read_line(&mut self.line)? == 0 {
                self.done = true;
                break;
            }
            let trimmed = self.line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.starts_with('>') {
                self.pending_header = Some(trimmed.to_string());
                break;
            }
            seq.extend_from_slice(trimmed.as_bytes());
        }
        Ok(Some(FastaRecord { id, description, seq }))
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = GenomicsResult<FastaRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// FASTA writer with configurable line wrapping.
pub struct FastaWriter<W: Write> {
    writer: W,
    wrap: usize,
}

impl<W: Write> FastaWriter<W> {
    /// Create a writer wrapping sequences at 70 columns.
    pub fn new(writer: W) -> Self {
        FastaWriter { writer, wrap: 70 }
    }

    /// Set the wrap width (0 disables wrapping).
    pub fn with_wrap(mut self, wrap: usize) -> Self {
        self.wrap = wrap;
        self
    }

    /// Write one record.
    pub fn write_record(&mut self, rec: &FastaRecord) -> GenomicsResult<()> {
        match &rec.description {
            Some(d) => writeln!(self.writer, ">{} {}", rec.id, d)?,
            None => writeln!(self.writer, ">{}", rec.id)?,
        }
        if self.wrap == 0 {
            self.writer.write_all(&rec.seq)?;
            writeln!(self.writer)?;
        } else {
            for chunk in rec.seq.chunks(self.wrap) {
                self.writer.write_all(chunk)?;
                writeln!(self.writer)?;
            }
        }
        Ok(())
    }

    /// Flush and return the inner writer.
    pub fn into_inner(mut self) -> GenomicsResult<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// One FASTQ record (quality string retained but unused downstream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read identifier (without the leading `@`).
    pub id: String,
    /// The sequence.
    pub seq: Vec<u8>,
    /// Phred quality string (same length as the sequence).
    pub qual: Vec<u8>,
}

/// Streaming FASTQ reader (the common 4-line record layout).
pub struct FastqReader<R: BufRead> {
    reader: R,
    line_no: usize,
}

impl<R: BufRead> FastqReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        FastqReader { reader, line_no: 0 }
    }

    fn read_nonempty_line(&mut self) -> GenomicsResult<Option<String>> {
        loop {
            let mut line = String::new();
            self.line_no += 1;
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let t = line.trim_end();
            if !t.is_empty() {
                return Ok(Some(t.to_string()));
            }
        }
    }

    /// Read the next record, or `None` at end of input.
    pub fn next_record(&mut self) -> GenomicsResult<Option<FastqRecord>> {
        let Some(header) = self.read_nonempty_line()? else { return Ok(None) };
        if !header.starts_with('@') {
            return Err(GenomicsError::MalformedRecord {
                line: self.line_no,
                message: "FASTQ record must start with '@'".to_string(),
            });
        }
        let seq = self.read_nonempty_line()?.ok_or(GenomicsError::MalformedRecord {
            line: self.line_no,
            message: "missing sequence line".to_string(),
        })?;
        let plus = self.read_nonempty_line()?.ok_or(GenomicsError::MalformedRecord {
            line: self.line_no,
            message: "missing '+' separator".to_string(),
        })?;
        if !plus.starts_with('+') {
            return Err(GenomicsError::MalformedRecord {
                line: self.line_no,
                message: "expected '+' separator".to_string(),
            });
        }
        let qual = self.read_nonempty_line()?.ok_or(GenomicsError::MalformedRecord {
            line: self.line_no,
            message: "missing quality line".to_string(),
        })?;
        if qual.len() != seq.len() {
            return Err(GenomicsError::MalformedRecord {
                line: self.line_no,
                message: format!(
                    "quality length {} does not match sequence length {}",
                    qual.len(),
                    seq.len()
                ),
            });
        }
        let id = header.trim_start_matches('@').split_whitespace().next().unwrap_or("").to_string();
        Ok(Some(FastqRecord { id, seq: seq.into_bytes(), qual: qual.into_bytes() }))
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = GenomicsResult<FastqRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_multi_record_multi_line_fasta() {
        let input = ">seq1 first sample\nACGT\nACGT\n\n>seq2\nTTTT\n";
        let records = FastaReader::new(Cursor::new(input)).read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "seq1");
        assert_eq!(records[0].description.as_deref(), Some("first sample"));
        assert_eq!(records[0].seq, b"ACGTACGT");
        assert_eq!(records[1].id, "seq2");
        assert_eq!(records[1].description, None);
        assert_eq!(records[1].len(), 4);
        assert!(!records[1].is_empty());
    }

    #[test]
    fn iterator_interface_yields_records() {
        let input = ">a\nAC\n>b\nGT\n";
        let ids: Vec<String> =
            FastaReader::new(Cursor::new(input)).map(|r| r.unwrap().id).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn rejects_sequence_before_header_and_empty_ids() {
        let err = FastaReader::new(Cursor::new("ACGT\n")).read_all().unwrap_err();
        assert!(matches!(err, GenomicsError::MalformedRecord { line: 1, .. }));
        let err = FastaReader::new(Cursor::new(">\nACGT\n")).read_all().unwrap_err();
        assert!(matches!(err, GenomicsError::MalformedRecord { .. }));
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(FastaReader::new(Cursor::new("")).read_all().unwrap().is_empty());
        assert!(FastaReader::new(Cursor::new("\n\n")).read_all().unwrap().is_empty());
    }

    #[test]
    fn writer_roundtrip_with_wrapping() {
        let rec = FastaRecord {
            id: "x".to_string(),
            description: Some("desc".to_string()),
            seq: b"ACGTACGTACGT".to_vec(),
        };
        let mut w = FastaWriter::new(Vec::new()).with_wrap(5);
        w.write_record(&rec).unwrap();
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, ">x desc\nACGTA\nCGTAC\nGT\n");
        let parsed = FastaReader::new(Cursor::new(text)).read_all().unwrap();
        assert_eq!(parsed[0], rec);
    }

    #[test]
    fn writer_without_wrapping() {
        let rec = FastaRecord::new("y", b"ACGT".to_vec());
        let mut w = FastaWriter::new(Vec::new()).with_wrap(0);
        w.write_record(&rec).unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert_eq!(text, ">y\nACGT\n");
    }

    #[test]
    fn fastq_parses_and_validates() {
        let input = "@r1 lane1\nACGT\n+\nIIII\n@r2\nGG\n+r2\nII\n";
        let reads: Vec<FastqRecord> =
            FastqReader::new(Cursor::new(input)).map(|r| r.unwrap()).collect();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].id, "r1");
        assert_eq!(reads[0].seq, b"ACGT");
        assert_eq!(reads[1].qual, b"II");
    }

    #[test]
    fn fastq_rejects_malformed_records() {
        assert!(FastqReader::new(Cursor::new("ACGT\n")).next_record().is_err());
        assert!(FastqReader::new(Cursor::new("@r\nACGT\nIIII\n")).next_record().is_err());
        let err = FastqReader::new(Cursor::new("@r\nACGT\n+\nII\n")).next_record();
        assert!(err.is_err());
        assert!(FastqReader::new(Cursor::new("")).next_record().unwrap().is_none());
    }
}
