//! K-mer encoding and extraction.
//!
//! A k-mer is a length-`k` substring of a nucleotide sequence
//! (Section II-B). GenomeAtScale represents every sequencing sample as the
//! set of k-mers it contains; each k-mer becomes a row index of the
//! indicator matrix. This module packs k-mers (k ≤ 31) into `u64` values
//! with 2 bits per base, supports canonical k-mers (a k-mer and its
//! reverse complement map to the same code — the reason the paper uses
//! k = 19 instead of 20 is to avoid k-mers equal to their own reverse
//! complement, which only exist for even k), and extracts k-mers from
//! sequences with a rolling encoder that skips ambiguous (`N`) bases.

use crate::error::{GenomicsError, GenomicsResult};
use serde::{Deserialize, Serialize};

/// A 2-bit packed k-mer code. The value is smaller than `4^k`.
pub type Kmer = u64;

/// Encode a nucleotide into 2 bits; returns `None` for ambiguous bases.
#[inline]
pub fn encode_base(b: u8) -> Option<u64> {
    match b {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// Decode 2 bits into an upper-case nucleotide.
#[inline]
pub fn decode_base(code: u64) -> u8 {
    match code & 0b11 {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        _ => b'T',
    }
}

/// Complement of a 2-bit encoded base (A↔T, C↔G).
#[inline]
pub fn complement_base(code: u64) -> u64 {
    3 - (code & 0b11)
}

/// Reverse complement of a packed k-mer.
pub fn reverse_complement(kmer: Kmer, k: usize) -> Kmer {
    let mut rc = 0u64;
    let mut fwd = kmer;
    for _ in 0..k {
        rc = (rc << 2) | complement_base(fwd & 0b11);
        fwd >>= 2;
    }
    rc
}

/// The canonical form of a k-mer: the smaller of the k-mer and its reverse
/// complement.
#[inline]
pub fn canonical(kmer: Kmer, k: usize) -> Kmer {
    kmer.min(reverse_complement(kmer, k))
}

/// Decode a packed k-mer back into its nucleotide string.
pub fn decode_kmer(kmer: Kmer, k: usize) -> String {
    let mut out = vec![0u8; k];
    let mut v = kmer;
    for i in (0..k).rev() {
        out[i] = decode_base(v & 0b11);
        v >>= 2;
    }
    String::from_utf8(out).expect("decoded bases are ASCII")
}

/// Extracts packed k-mers from sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmerExtractor {
    k: usize,
    canonical: bool,
}

impl KmerExtractor {
    /// Create an extractor for canonical k-mers of length `k` (1..=31).
    pub fn new(k: usize) -> GenomicsResult<Self> {
        if k == 0 || k > 31 {
            return Err(GenomicsError::InvalidK(k));
        }
        Ok(KmerExtractor { k, canonical: true })
    }

    /// Create an extractor that keeps the forward orientation only.
    pub fn new_forward(k: usize) -> GenomicsResult<Self> {
        Ok(KmerExtractor { canonical: false, ..Self::new(k)? })
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether reverse complements are collapsed to a canonical code.
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Number of distinct k-mer codes (`4^k`), i.e. the attribute-universe
    /// size `m` of the indicator matrix.
    pub fn universe_size(&self) -> u64 {
        1u64 << (2 * self.k)
    }

    /// Extract all (possibly duplicate) k-mer codes from a sequence.
    ///
    /// Windows containing an ambiguous base are skipped; the rolling
    /// encoder restarts after each such base.
    pub fn extract(&self, seq: &[u8]) -> Vec<Kmer> {
        let mut out = Vec::new();
        self.extract_into(seq, &mut out);
        out
    }

    /// Extract k-mer codes, appending to `out` (avoids reallocation when
    /// processing many reads).
    pub fn extract_into(&self, seq: &[u8], out: &mut Vec<Kmer>) {
        if seq.len() < self.k {
            return;
        }
        let mask: u64 = if self.k == 32 { u64::MAX } else { (1u64 << (2 * self.k)) - 1 };
        let mut current: u64 = 0;
        let mut valid = 0usize;
        for &b in seq {
            match encode_base(b) {
                Some(code) => {
                    current = ((current << 2) | code) & mask;
                    valid += 1;
                    if valid >= self.k {
                        let kmer =
                            if self.canonical { canonical(current, self.k) } else { current };
                        out.push(kmer);
                    }
                }
                None => {
                    current = 0;
                    valid = 0;
                }
            }
        }
    }

    /// Extract the *set* of distinct k-mers of a sequence (sorted).
    pub fn extract_distinct(&self, seq: &[u8]) -> Vec<Kmer> {
        let mut v = self.extract(seq);
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_encoding_roundtrip() {
        for (b, code) in [(b'A', 0), (b'C', 1), (b'G', 2), (b'T', 3)] {
            assert_eq!(encode_base(b), Some(code));
            assert_eq!(decode_base(code), b);
        }
        assert_eq!(encode_base(b'a'), Some(0));
        assert_eq!(encode_base(b'N'), None);
        assert_eq!(encode_base(b'X'), None);
        assert_eq!(complement_base(0), 3);
        assert_eq!(complement_base(1), 2);
    }

    #[test]
    fn reverse_complement_involution() {
        let ex = KmerExtractor::new_forward(7).unwrap();
        let kmers = ex.extract(b"ACGTTGCAGGT");
        for &km in &kmers {
            assert_eq!(reverse_complement(reverse_complement(km, 7), 7), km);
        }
    }

    #[test]
    fn paper_example_3mers_and_4mers() {
        // "in a sequence AATGTC, there are four 3-mers (AAT, ATG, TGT, GTC)
        // and three 4-mers (AATG, ATGT, TGTC)".
        let ex3 = KmerExtractor::new_forward(3).unwrap();
        assert_eq!(ex3.extract(b"AATGTC").len(), 4);
        let ex4 = KmerExtractor::new_forward(4).unwrap();
        assert_eq!(ex4.extract(b"AATGTC").len(), 3);
    }

    #[test]
    fn forward_kmers_decode_to_the_right_strings() {
        let ex = KmerExtractor::new_forward(3).unwrap();
        let kmers = ex.extract(b"AATGTC");
        let strings: Vec<String> = kmers.iter().map(|&k| decode_kmer(k, 3)).collect();
        assert_eq!(strings, vec!["AAT", "ATG", "TGT", "GTC"]);
    }

    #[test]
    fn canonical_collapses_reverse_complement_sequences() {
        let ex = KmerExtractor::new(5).unwrap();
        let fwd = b"ACGTTGCAAGGTC";
        // Reverse complement of the whole sequence.
        let rc: Vec<u8> = fwd
            .iter()
            .rev()
            .map(|&b| match b {
                b'A' => b'T',
                b'T' => b'A',
                b'C' => b'G',
                _ => b'C',
            })
            .collect();
        let mut a = ex.extract(fwd);
        let mut b = ex.extract(&rc);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn ambiguous_bases_break_the_window() {
        let ex = KmerExtractor::new_forward(3).unwrap();
        // "AANTGT": valid 3-mers only from "TGT" (the window must restart
        // after N): AAN, ANT, NTG are invalid.
        assert_eq!(ex.extract(b"AANTGT"), ex.extract(b"TGT"));
        // All-N sequence yields nothing.
        assert!(ex.extract(b"NNNNNN").is_empty());
    }

    #[test]
    fn short_sequences_yield_nothing() {
        let ex = KmerExtractor::new(9).unwrap();
        assert!(ex.extract(b"ACGT").is_empty());
        assert!(ex.extract(b"").is_empty());
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(KmerExtractor::new(0).is_err());
        assert!(KmerExtractor::new(32).is_err());
        assert!(KmerExtractor::new(31).is_ok());
    }

    #[test]
    fn universe_size_is_four_to_the_k() {
        assert_eq!(KmerExtractor::new(3).unwrap().universe_size(), 64);
        assert_eq!(KmerExtractor::new(19).unwrap().universe_size(), 1u64 << 38);
    }

    #[test]
    fn extract_distinct_dedups() {
        let ex = KmerExtractor::new_forward(2).unwrap();
        let distinct = ex.extract_distinct(b"AAAAAA");
        assert_eq!(distinct.len(), 1);
        assert_eq!(decode_kmer(distinct[0], 2), "AA");
    }

    #[test]
    fn odd_k_has_no_self_reverse_complement_kmers() {
        // The paper uses odd k (19, 31) so no k-mer equals its own reverse
        // complement; verify for k = 3 over the whole universe.
        for code in 0..64u64 {
            assert_ne!(reverse_complement(code, 3), code);
        }
    }
}
