//! # gas-genomics — sequence handling for GenomeAtScale
//!
//! GenomeAtScale (the tool built around the SimilarityAtScale algorithm)
//! ingests high-throughput sequencing samples in FASTA format, represents
//! every sample as the set of k-mers it contains, and feeds those sets to
//! the distributed Jaccard computation. This crate provides that
//! front-end plus the synthetic data used by the reproduction:
//!
//! * [`fasta`] — FASTA/FASTQ readers and a FASTA writer;
//! * [`kmer`] — 2-bit k-mer encoding, canonical k-mers (reverse
//!   complements collapse onto one representative), rolling extraction
//!   with `N` handling;
//! * [`sample`] — per-sample k-mer sets with count thresholds (the
//!   "remove rare k-mers" preprocessing of Section V-A2) and the sorted
//!   numerical representation files GenomeAtScale exchanges;
//! * [`synth`] — synthetic genomes, mutated derivatives, short-read
//!   simulation and Bernoulli indicator matrices;
//! * [`datasets`] — scaled-down generators matched to the published
//!   statistics of the Kingsford and BIGSI datasets and the paper's
//!   synthetic workloads (the substitution for the multi-terabyte public
//!   datasets the paper uses).
//!
//! ```
//! use gas_genomics::kmer::KmerExtractor;
//! use gas_genomics::sample::KmerSample;
//!
//! let ex = KmerExtractor::new(5).unwrap();
//! let a = KmerSample::from_sequence("a", b"ACGTACGTACGT", &ex);
//! let b = KmerSample::from_sequence("b", b"ACGTACGTACGA", &ex);
//! let j = a.jaccard(&b);
//! assert!(j > 0.0 && j < 1.0);
//! ```

pub mod datasets;
pub mod error;
pub mod fasta;
pub mod kmer;
pub mod sample;
pub mod synth;

pub use error::{GenomicsError, GenomicsResult};
pub use fasta::{FastaReader, FastaRecord, FastaWriter, FastqReader};
pub use kmer::{Kmer, KmerExtractor};
pub use sample::KmerSample;
