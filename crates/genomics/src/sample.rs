//! Per-sample k-mer sets.
//!
//! GenomeAtScale represents each sequencing sample `i` as the set `X_i` of
//! k-mers appearing in it (Section II-B). Raw high-throughput data is
//! noisy, so rare k-mers are removed with a minimum-count threshold before
//! the set is formed (Section V-A2 describes thresholds chosen per dataset
//! size). The tool also produces "files with a sorted numerical
//! representation for each data sample" (Section IV) — this module reads
//! and writes that representation.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use crate::error::{GenomicsError, GenomicsResult};
use crate::fasta::FastaRecord;
use crate::kmer::{Kmer, KmerExtractor};

/// A named data sample: a sorted, deduplicated set of k-mer codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmerSample {
    name: String,
    kmers: Vec<Kmer>,
}

impl KmerSample {
    /// Build a sample from an already-sorted-and-unique k-mer list.
    pub fn from_sorted_kmers(name: impl Into<String>, kmers: Vec<Kmer>) -> GenomicsResult<Self> {
        if kmers.windows(2).any(|w| w[0] >= w[1]) {
            return Err(GenomicsError::InvalidConfig(
                "k-mer list must be strictly increasing".to_string(),
            ));
        }
        Ok(KmerSample { name: name.into(), kmers })
    }

    /// Build a sample from arbitrary k-mer codes (sorted and deduplicated
    /// internally).
    pub fn from_kmers(name: impl Into<String>, mut kmers: Vec<Kmer>) -> Self {
        kmers.sort_unstable();
        kmers.dedup();
        KmerSample { name: name.into(), kmers }
    }

    /// Extract the sample from a single sequence.
    pub fn from_sequence(name: impl Into<String>, seq: &[u8], extractor: &KmerExtractor) -> Self {
        KmerSample::from_kmers(name, extractor.extract(seq))
    }

    /// Extract the sample from several sequences (e.g. all reads or
    /// contigs of one experiment).
    pub fn from_sequences<'a>(
        name: impl Into<String>,
        seqs: impl IntoIterator<Item = &'a [u8]>,
        extractor: &KmerExtractor,
    ) -> Self {
        let mut all = Vec::new();
        for s in seqs {
            extractor.extract_into(s, &mut all);
        }
        KmerSample::from_kmers(name, all)
    }

    /// Extract the sample from FASTA records.
    pub fn from_fasta_records(
        name: impl Into<String>,
        records: &[FastaRecord],
        extractor: &KmerExtractor,
    ) -> Self {
        KmerSample::from_sequences(name, records.iter().map(|r| r.seq.as_slice()), extractor)
    }

    /// Extract the sample from noisy reads, keeping only k-mers observed
    /// at least `min_count` times (the rare-k-mer / noise filter applied
    /// to the Kingsford and BIGSI data).
    pub fn from_reads_with_threshold<'a>(
        name: impl Into<String>,
        reads: impl IntoIterator<Item = &'a [u8]>,
        extractor: &KmerExtractor,
        min_count: usize,
    ) -> Self {
        let mut counts: HashMap<Kmer, usize> = HashMap::new();
        let mut buf = Vec::new();
        for r in reads {
            buf.clear();
            extractor.extract_into(r, &mut buf);
            for &k in &buf {
                *counts.entry(k).or_insert(0) += 1;
            }
        }
        let kept: Vec<Kmer> =
            counts.into_iter().filter(|&(_, c)| c >= min_count).map(|(k, _)| k).collect();
        KmerSample::from_kmers(name, kept)
    }

    /// Sample name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted distinct k-mer codes.
    pub fn kmers(&self) -> &[Kmer] {
        &self.kmers
    }

    /// Number of distinct k-mers, `|X_i|`.
    pub fn len(&self) -> usize {
        self.kmers.len()
    }

    /// True if the sample contains no k-mers.
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, kmer: Kmer) -> bool {
        self.kmers.binary_search(&kmer).is_ok()
    }

    /// `|X_i ∩ X_j|` by merging the two sorted lists.
    pub fn intersection_size(&self, other: &KmerSample) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < self.kmers.len() && j < other.kmers.len() {
            match self.kmers[i].cmp(&other.kmers[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// `|X_i ∪ X_j|`.
    pub fn union_size(&self, other: &KmerSample) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Exact Jaccard similarity `J(X_i, X_j)`; two empty sets have
    /// similarity 1 by the paper's convention.
    pub fn jaccard(&self, other: &KmerSample) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 1.0;
        }
        self.intersection_size(other) as f64 / union as f64
    }

    /// Exact Jaccard distance `d_J = 1 − J`.
    pub fn jaccard_distance(&self, other: &KmerSample) -> f64 {
        1.0 - self.jaccard(other)
    }

    /// Write the sorted numerical representation: one decimal k-mer code
    /// per line (the file format GenomeAtScale's preprocessing emits).
    pub fn write_sorted(&self, mut w: impl Write) -> GenomicsResult<()> {
        for k in &self.kmers {
            writeln!(w, "{k}")?;
        }
        Ok(())
    }

    /// Read a sorted numerical representation produced by
    /// [`KmerSample::write_sorted`].
    pub fn read_sorted(name: impl Into<String>, r: impl BufRead) -> GenomicsResult<Self> {
        let mut kmers = Vec::new();
        for (idx, line) in r.lines().enumerate() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            let v: u64 = t.parse().map_err(|_| GenomicsError::MalformedRecord {
                line: idx + 1,
                message: format!("'{t}' is not an unsigned integer"),
            })?;
            kmers.push(v);
        }
        Ok(KmerSample::from_kmers(name, kmers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex() -> KmerExtractor {
        KmerExtractor::new_forward(3).unwrap()
    }

    #[test]
    fn from_kmers_sorts_and_dedups() {
        let s = KmerSample::from_kmers("s", vec![5, 1, 5, 3]);
        assert_eq!(s.kmers(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(3));
        assert!(!s.contains(2));
    }

    #[test]
    fn from_sorted_kmers_validates_order() {
        assert!(KmerSample::from_sorted_kmers("a", vec![1, 2, 3]).is_ok());
        assert!(KmerSample::from_sorted_kmers("a", vec![1, 1]).is_err());
        assert!(KmerSample::from_sorted_kmers("a", vec![2, 1]).is_err());
    }

    #[test]
    fn set_operations_match_brute_force() {
        let a = KmerSample::from_kmers("a", vec![1, 2, 3, 4, 5]);
        let b = KmerSample::from_kmers("b", vec![4, 5, 6, 7]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 7);
        assert!((a.jaccard(&b) - 2.0 / 7.0).abs() < 1e-12);
        assert!((a.jaccard_distance(&b) - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_have_similarity_one() {
        let a = KmerSample::from_kmers("a", vec![]);
        let b = KmerSample::from_kmers("b", vec![]);
        assert!(a.is_empty());
        assert_eq!(a.jaccard(&b), 1.0);
        let c = KmerSample::from_kmers("c", vec![1]);
        assert_eq!(a.jaccard(&c), 0.0);
    }

    #[test]
    fn identical_samples_have_similarity_one() {
        let a = KmerSample::from_sequence("a", b"ACGTACGTAA", &ex());
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.jaccard_distance(&a), 0.0);
    }

    #[test]
    fn from_sequences_merges_reads() {
        let reads: Vec<&[u8]> = vec![b"ACGTT", b"TTTAC"];
        let merged = KmerSample::from_sequences("m", reads.iter().copied(), &ex());
        let separate_a = KmerSample::from_sequence("a", b"ACGTT", &ex());
        let separate_b = KmerSample::from_sequence("b", b"TTTAC", &ex());
        assert_eq!(merged.len(), separate_a.union_size(&separate_b));
    }

    #[test]
    fn threshold_removes_rare_kmers() {
        // "ACG" appears in both reads, everything else once.
        let reads: Vec<&[u8]> = vec![b"ACGT", b"AACG"];
        let no_threshold =
            KmerSample::from_reads_with_threshold("s", reads.iter().copied(), &ex(), 1);
        let thresholded =
            KmerSample::from_reads_with_threshold("s", reads.iter().copied(), &ex(), 2);
        assert!(thresholded.len() < no_threshold.len());
        assert_eq!(thresholded.len(), 1);
    }

    #[test]
    fn sorted_representation_roundtrip() {
        let s = KmerSample::from_kmers("s", vec![10, 7, 99999999999]);
        let mut buf = Vec::new();
        s.write_sorted(&mut buf).unwrap();
        let parsed = KmerSample::read_sorted("s", std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn read_sorted_rejects_garbage() {
        let err = KmerSample::read_sorted("s", std::io::Cursor::new("12\nnot-a-number\n"));
        assert!(err.is_err());
        let ok = KmerSample::read_sorted("s", std::io::Cursor::new("\n\n3\n")).unwrap();
        assert_eq!(ok.kmers(), &[3]);
    }

    #[test]
    fn from_fasta_records_uses_all_records() {
        let recs = vec![
            FastaRecord::new("r1", b"ACGT".to_vec()),
            FastaRecord::new("r2", b"GGGG".to_vec()),
        ];
        let s = KmerSample::from_fasta_records("sample", &recs, &ex());
        assert!(s.len() >= 2);
        assert_eq!(s.name(), "sample");
    }
}
