//! Scaled-down stand-ins for the paper's evaluation datasets.
//!
//! The paper evaluates on two real corpora and a family of synthetic
//! matrices (Section V-A2/A3):
//!
//! * **Kingsford / BBB** — 2,580 human RNASeq experiments, k = 19,
//!   indicator-matrix density ≈ 1.5·10⁻⁴, low variability between samples;
//! * **BIGSI** — 446,506 bacterial/viral whole-genome sequencing
//!   experiments, k = 31, density ≈ 4·10⁻¹², very high per-column density
//!   variability, 170 TB of raw input;
//! * **synthetic** — `m = 32M`, `n = 10k`, uniform Bernoulli density `p`.
//!
//! Those corpora are terabyte-scale and not redistributable here, so this
//! module generates matrices **matched on the statistics that drive the
//! algorithm's behaviour** — sample count `n`, attribute universe `m`,
//! density, and per-column density skew — at a configurable scale factor.
//! The substitution is recorded in `DESIGN.md`.

use serde::{Deserialize, Serialize};

use crate::error::{GenomicsError, GenomicsResult};
use crate::synth::{bernoulli_columns, skewed_columns};

/// Which published dataset a synthetic spec models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Low-variability, relatively dense RNASeq-like data (Kingsford/BBB).
    KingsfordLike,
    /// Highly skewed, extremely sparse whole-genome data (BIGSI).
    BigsiLike,
    /// Uniform Bernoulli synthetic data (the paper's Section V-C).
    Synthetic,
}

/// Specification of a synthetic dataset: dimensions plus density model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which published dataset this models.
    pub kind: DatasetKind,
    /// Number of data samples (columns of the indicator matrix).
    pub n_samples: usize,
    /// Number of possible attribute values (rows of the indicator matrix).
    pub m_attributes: usize,
    /// Mean density of the indicator matrix.
    pub density: f64,
    /// Ratio between the densest and sparsest column (1 = uniform).
    pub density_skew: f64,
    /// k-mer length the modeled dataset uses (informational).
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// A Kingsford-like dataset scaled by `scale ∈ (0, 1]`: at `scale = 1`
    /// the sample count matches the paper (2,580) and the density is the
    /// published ≈1.5·10⁻⁴; the attribute dimension is shrunk so the
    /// experiment fits in one process while preserving density.
    pub fn kingsford_like(scale: f64) -> Self {
        let scale = scale.clamp(1e-3, 1.0);
        DatasetSpec {
            kind: DatasetKind::KingsfordLike,
            n_samples: ((2580.0 * scale).round() as usize).max(4),
            m_attributes: ((4.0e6 * scale).round() as usize).max(1024),
            density: 1.5e-4,
            density_skew: 4.0,
            k: 19,
            seed: 0x4B49_4E47,
        }
    }

    /// A BIGSI-like dataset scaled by `scale`: the real corpus has 446,506
    /// samples and density ≈4·10⁻¹² over m = 4³¹. The literal density is
    /// only meaningful at the full 4³¹ universe, so the scaled generator
    /// preserves the quantity that drives the algorithm — the mean number
    /// of k-mers per sample relative to the (scaled) universe — together
    /// with the very high per-column density skew the paper highlights.
    pub fn bigsi_like(scale: f64) -> Self {
        let scale = scale.clamp(1e-4, 1.0);
        let m_attributes = ((2.0e8 * scale).round() as usize).max(1 << 16);
        // Keep roughly 800 expected attributes per sample after scaling.
        let density = (800.0 / m_attributes as f64).min(0.05);
        DatasetSpec {
            kind: DatasetKind::BigsiLike,
            n_samples: ((446_506.0 * scale).round() as usize).max(8),
            m_attributes,
            density,
            density_skew: 1000.0,
            k: 31,
            seed: 0x4249_4753,
        }
    }

    /// The paper's synthetic workload (`m = 32M`, `n = 10k`, uniform
    /// density `p`), scaled by `scale`.
    pub fn synthetic(density: f64, scale: f64) -> Self {
        let scale = scale.clamp(1e-4, 1.0);
        DatasetSpec {
            kind: DatasetKind::Synthetic,
            n_samples: ((10_000.0 * scale).round() as usize).max(4),
            m_attributes: ((32.0e6 * scale).round() as usize).max(1024),
            density,
            density_skew: 1.0,
            k: 31,
            seed: 0x53_594E,
        }
    }

    /// Explicit dimensions with uniform density (used by the weak-scaling
    /// experiment, which grows `m` and `n` with the core count).
    pub fn explicit(m_attributes: usize, n_samples: usize, density: f64, seed: u64) -> Self {
        DatasetSpec {
            kind: DatasetKind::Synthetic,
            n_samples,
            m_attributes,
            density,
            density_skew: 1.0,
            k: 31,
            seed,
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expected number of nonzeros of the generated indicator matrix.
    pub fn expected_nnz(&self) -> f64 {
        self.m_attributes as f64 * self.n_samples as f64 * self.density
    }

    /// Generate the dataset: for each sample, the sorted list of attribute
    /// (row) indices present in it. Suitable for feeding directly into
    /// `gas-core`'s `SampleCollection`.
    pub fn generate(&self) -> GenomicsResult<Vec<Vec<u64>>> {
        if self.n_samples == 0 || self.m_attributes == 0 {
            return Err(GenomicsError::InvalidConfig(
                "dataset must have at least one sample and one attribute".to_string(),
            ));
        }
        let columns = if self.density_skew <= 1.0 + 1e-9 {
            bernoulli_columns(self.m_attributes, self.n_samples, self.density, self.seed)?
        } else {
            // Log-uniform densities whose geometric mean equals `density`.
            let half_span = self.density_skew.sqrt();
            let min_d = (self.density / half_span).max(1e-15);
            let max_d = (self.density * half_span).min(1.0);
            skewed_columns(self.m_attributes, self.n_samples, min_d, max_d, self.seed)?
        };
        Ok(columns.into_iter().map(|col| col.into_iter().map(|r| r as u64).collect()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kingsford_preset_matches_published_statistics() {
        let spec = DatasetSpec::kingsford_like(1.0);
        assert_eq!(spec.n_samples, 2580);
        assert!((spec.density - 1.5e-4).abs() < 1e-9);
        assert_eq!(spec.k, 19);
        let scaled = DatasetSpec::kingsford_like(0.01);
        assert!(scaled.n_samples < spec.n_samples);
        assert_eq!(scaled.density, spec.density);
    }

    #[test]
    fn bigsi_preset_is_more_skewed_and_preserves_per_sample_counts() {
        let b = DatasetSpec::bigsi_like(0.001);
        let k = DatasetSpec::kingsford_like(0.1);
        assert!(b.density_skew > k.density_skew);
        assert_eq!(b.k, 31);
        // ~800 expected attributes per sample regardless of scale.
        let per_sample_small = DatasetSpec::bigsi_like(0.001);
        let per_sample_large = DatasetSpec::bigsi_like(0.01);
        let count = |s: &DatasetSpec| s.density * s.m_attributes as f64;
        assert!((count(&per_sample_small) - 800.0).abs() < 1.0);
        assert!((count(&per_sample_large) - 800.0).abs() < 1.0);
    }

    #[test]
    fn generated_density_matches_spec() {
        let spec = DatasetSpec::synthetic(0.01, 0.01);
        let samples = spec.generate().unwrap();
        assert_eq!(samples.len(), spec.n_samples);
        let nnz: usize = samples.iter().map(|s| s.len()).sum();
        let density = nnz as f64 / (spec.n_samples as f64 * spec.m_attributes as f64);
        assert!((density - 0.01).abs() < 0.003, "density {density}");
        assert!(
            (spec.expected_nnz() - 0.01 * spec.n_samples as f64 * spec.m_attributes as f64).abs()
                < 1.0
        );
    }

    #[test]
    fn generated_samples_are_sorted_and_bounded() {
        let spec = DatasetSpec::kingsford_like(0.005);
        for s in spec.generate().unwrap() {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&v| (v as usize) < spec.m_attributes));
        }
    }

    #[test]
    fn skewed_generation_produces_variable_columns() {
        let spec = DatasetSpec::bigsi_like(0.0005).with_seed(3);
        let samples = spec.generate().unwrap();
        let sizes: Vec<usize> = samples.iter().map(|s| s.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max >= 5 * (min + 1), "expected skew: min={min}, max={max}");
    }

    #[test]
    fn explicit_spec_and_determinism() {
        let a = DatasetSpec::explicit(10_000, 50, 0.02, 7).generate().unwrap();
        let b = DatasetSpec::explicit(10_000, 50, 0.02, 7).generate().unwrap();
        assert_eq!(a, b);
        let c = DatasetSpec::explicit(10_000, 50, 0.02, 8).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let mut spec = DatasetSpec::explicit(0, 10, 0.1, 1);
        assert!(spec.generate().is_err());
        spec = DatasetSpec::explicit(10, 0, 0.1, 1);
        assert!(spec.generate().is_err());
    }
}
